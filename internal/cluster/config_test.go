package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(`{
		"shards": [
			{"id": "s1", "url": "http://127.0.0.1:9001"},
			{"id": "s2", "url": "http://127.0.0.1:9002/"}
		],
		"queue_samples": 1000,
		"health_interval": "250ms",
		"forward_timeout": 1000000000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Shards) != 2 || cfg.Shards[0].ID != "s1" {
		t.Fatalf("shards = %+v", cfg.Shards)
	}
	if cfg.queueSamples() != 1000 {
		t.Errorf("queueSamples = %d", cfg.queueSamples())
	}
	if cfg.healthInterval() != 250*time.Millisecond {
		t.Errorf("healthInterval = %v", cfg.healthInterval())
	}
	if cfg.forwardTimeout() != time.Second {
		t.Errorf("forwardTimeout = %v (numeric ns form)", cfg.forwardTimeout())
	}
}

func TestParseConfigDefaults(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader(`{"shards":[{"id":"a","url":"http://h:1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.queueSamples() != 65536 || cfg.batchSamples() != 4096 {
		t.Errorf("queue/batch defaults: %d/%d", cfg.queueSamples(), cfg.batchSamples())
	}
	if cfg.healthInterval() != 500*time.Millisecond || cfg.failThreshold() != 3 {
		t.Errorf("health defaults: %v/%d", cfg.healthInterval(), cfg.failThreshold())
	}
	if cfg.forwardAttempts() != 3 || cfg.forwardTimeout() != 10*time.Second {
		t.Errorf("forward defaults: %d/%v", cfg.forwardAttempts(), cfg.forwardTimeout())
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"no shards":      `{"shards": []}`,
		"empty id":       `{"shards":[{"id":"","url":"http://h:1"}]}`,
		"dup id":         `{"shards":[{"id":"a","url":"http://h:1"},{"id":"a","url":"http://h:2"}]}`,
		"relative url":   `{"shards":[{"id":"a","url":"localhost:9001"}]}`,
		"bad scheme":     `{"shards":[{"id":"a","url":"ftp://h:1"}]}`,
		"unknown field":  `{"shards":[{"id":"a","url":"http://h:1"}], "qeue_samples": 5}`,
		"bad duration":   `{"shards":[{"id":"a","url":"http://h:1"}], "health_interval": "fast"}`,
		"duration array": `{"shards":[{"id":"a","url":"http://h:1"}], "health_interval": []}`,
	}
	for name, body := range cases {
		if _, err := ParseConfig(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestHealthIntervalDisable(t *testing.T) {
	cfg := Config{HealthInterval: Duration(-1)}
	if cfg.healthInterval() > 0 {
		t.Errorf("negative interval should disable health checks, got %v", cfg.healthInterval())
	}
}
