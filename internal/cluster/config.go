package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"time"
)

// ShardConfig names one liond shard and where to reach it.
type ShardConfig struct {
	// ID is the stable shard identity the ring hashes on. Renaming a shard
	// moves every tag it owns; changing only its URL does not.
	ID string `json:"id"`
	// URL is the shard's HTTP base, e.g. "http://10.0.0.7:8077".
	URL string `json:"url"`
}

// Config is the static cluster membership and tuning, loaded from a JSON
// file at router startup. Membership is deliberately not dynamic: the ring
// must be identical across router restarts or tags would re-shard and lose
// their window state (see the package comment).
type Config struct {
	// Shards is the ring membership. Required, order-insensitive.
	Shards []ShardConfig `json:"shards"`
	// Replicas is the virtual-node count per shard; 0 = DefaultReplicas.
	Replicas int `json:"replicas,omitempty"`
	// QueueSamples bounds each shard's forward queue in samples. A batch
	// that would push a queue past this is rejected whole (counted in
	// lion_cluster_rejected_total{reason="queue_full"}). 0 = 65536.
	QueueSamples int `json:"queue_samples,omitempty"`
	// BatchSamples caps how many queued samples one forward POST coalesces.
	// 0 = 4096 (one wire frame).
	BatchSamples int `json:"batch_samples,omitempty"`
	// HealthInterval is the /readyz probe period. 0 = 500ms; negative
	// disables health checking (shards stay in their initial healthy state —
	// used by tests that drive state transitions directly).
	HealthInterval Duration `json:"health_interval,omitempty"`
	// HealthTimeout bounds one probe. 0 = 2s.
	HealthTimeout Duration `json:"health_timeout,omitempty"`
	// FailThreshold is how many consecutive failed probes eject a shard.
	// 0 = 3.
	FailThreshold int `json:"fail_threshold,omitempty"`
	// ForwardTimeout bounds one forward POST. 0 = 10s.
	ForwardTimeout Duration `json:"forward_timeout,omitempty"`
	// ForwardAttempts is how many times a batch is POSTed before it is
	// dropped (counted in lion_cluster_forward_errors_total). 0 = 3.
	ForwardAttempts int `json:"forward_attempts,omitempty"`
}

// Duration is a time.Duration that unmarshals from JSON strings like
// "500ms" or "2s" (and, for convenience, from bare numbers of nanoseconds).
type Duration time.Duration

// UnmarshalJSON parses either a Go duration string or a nanosecond number.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dur, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("cluster: duration %q: %w", x, err)
		}
		*d = Duration(dur)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("cluster: duration must be a string or number, got %T", v)
	}
	return nil
}

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Defaulted accessors, mirroring stream.Config's style.

func (c Config) replicas() int { return c.Replicas } // NewRing defaults 0

func (c Config) queueSamples() int {
	if c.QueueSamples <= 0 {
		return 65536
	}
	return c.QueueSamples
}

func (c Config) batchSamples() int {
	if c.BatchSamples <= 0 {
		return 4096
	}
	return c.BatchSamples
}

func (c Config) healthInterval() time.Duration {
	if c.HealthInterval == 0 {
		return 500 * time.Millisecond
	}
	return time.Duration(c.HealthInterval)
}

func (c Config) healthTimeout() time.Duration {
	if c.HealthTimeout <= 0 {
		return 2 * time.Second
	}
	return time.Duration(c.HealthTimeout)
}

func (c Config) failThreshold() int {
	if c.FailThreshold <= 0 {
		return 3
	}
	return c.FailThreshold
}

func (c Config) forwardTimeout() time.Duration {
	if c.ForwardTimeout <= 0 {
		return 10 * time.Second
	}
	return time.Duration(c.ForwardTimeout)
}

func (c Config) forwardAttempts() int {
	if c.ForwardAttempts <= 0 {
		return 3
	}
	return c.ForwardAttempts
}

// Validate checks the membership: at least one shard, unique non-empty ids,
// absolute http/https URLs.
func (c Config) Validate() error {
	if len(c.Shards) == 0 {
		return fmt.Errorf("cluster: config has no shards")
	}
	seen := make(map[string]bool, len(c.Shards))
	for i, s := range c.Shards {
		if s.ID == "" {
			return fmt.Errorf("cluster: shard %d has no id", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("cluster: duplicate shard id %q", s.ID)
		}
		seen[s.ID] = true
		u, err := url.Parse(s.URL)
		if err != nil {
			return fmt.Errorf("cluster: shard %q url: %w", s.ID, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: shard %q url %q must be absolute http(s)", s.ID, s.URL)
		}
	}
	return nil
}

// ParseConfig decodes and validates a JSON cluster config. Unknown fields
// are rejected so a typo in a tuning knob fails loudly at startup.
func ParseConfig(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("cluster: parse config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &cfg, nil
}

// LoadConfig reads the cluster config from a file.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
