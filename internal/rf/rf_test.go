package rf

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/rfid-lion/lion/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBandWavelength(t *testing.T) {
	b := DefaultBand()
	// λ = c/f ≈ 0.3257 m at 920.625 MHz; the paper quotes a
	// half-wavelength of "about 16 cm".
	if got := b.Wavelength(); !almostEq(got, 0.32564, 1e-4) {
		t.Errorf("Wavelength = %v", got)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
	if err := (Band{}).Validate(); !errors.Is(err, ErrBadFrequency) {
		t.Errorf("zero freq err = %v", err)
	}
}

func TestWrapPhase(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
	}
	for _, tt := range tests {
		if got := WrapPhase(tt.in); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("WrapPhase(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestWrapPhaseSigned(t *testing.T) {
	if got := WrapPhaseSigned(3 * math.Pi / 2); !almostEq(got, -math.Pi/2, 1e-12) {
		t.Errorf("WrapPhaseSigned = %v", got)
	}
	if got := WrapPhaseSigned(math.Pi); !almostEq(got, math.Pi, 1e-12) {
		t.Errorf("WrapPhaseSigned(pi) = %v", got)
	}
}

func TestWrapPhasePropertyRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		w := WrapPhase(x)
		s := WrapPhaseSigned(x)
		return w >= 0 && w < 2*math.Pi && s > -math.Pi && s <= math.Pi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseDistanceRoundTrip(t *testing.T) {
	lambda := DefaultBand().Wavelength()
	d := 0.42
	theta := PhaseOfDistance(d, lambda)
	if got := DistanceOfPhaseDelta(theta, lambda); !almostEq(got, d, 1e-12) {
		t.Errorf("round trip = %v, want %v", got, d)
	}
}

func TestReflectorImage(t *testing.T) {
	// Floor z=0.
	r := Reflector{Plane: geom.Plane3{C: 1}, Coeff: 0.5}
	got := r.Image(geom.V3(1, 2, 3))
	if got != geom.V3(1, 2, -3) {
		t.Errorf("Image = %v", got)
	}
	// Image is an involution.
	if back := r.Image(got); back != geom.V3(1, 2, 3) {
		t.Errorf("double image = %v", back)
	}
	// Degenerate plane leaves the point alone.
	deg := Reflector{Plane: geom.Plane3{}, Coeff: 0.5}
	if got := deg.Image(geom.V3(1, 2, 3)); got != geom.V3(1, 2, 3) {
		t.Errorf("degenerate image = %v", got)
	}
}

func TestFreeSpaceChannelPhaseMatchesFormula(t *testing.T) {
	p, err := NewPropagation(DefaultBand())
	if err != nil {
		t.Fatal(err)
	}
	ant := geom.V3(0, 0, 0)
	for _, d := range []float64{0.3, 0.65, 1, 1.6, 2.5} {
		tag := geom.V3(0, d, 0)
		got := p.ChannelPhase(ant, tag)
		want := WrapPhase(PhaseOfDistance(d, p.Lambda))
		if !almostEq(got, want, 1e-9) && !almostEq(math.Abs(got-want), 2*math.Pi, 1e-9) {
			t.Errorf("d=%v: phase = %v, want %v", d, got, want)
		}
	}
}

func TestMultipathPerturbsPhase(t *testing.T) {
	b := DefaultBand()
	free, err := NewPropagation(b)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewPropagation(b)
	if err != nil {
		t.Fatal(err)
	}
	// A floor at z = −1 m with moderate reflectivity.
	multi.Reflectors = []Reflector{{Plane: geom.Plane3{C: 1, D: -1}, Coeff: 0.4}}
	ant := geom.V3(0, 0, 0)
	tag := geom.V3(0, 0.8, 0)
	pf := free.ChannelPhase(ant, tag)
	pm := multi.ChannelPhase(ant, tag)
	if almostEq(pf, pm, 1e-9) {
		t.Error("reflector had no effect on phase")
	}
	diff := math.Abs(WrapPhaseSigned(pf - pm))
	// The bounce is longer and weaker than the direct path, so it perturbs
	// rather than dominates.
	if diff > math.Pi/2 {
		t.Errorf("multipath distortion implausibly large: %v rad", diff)
	}
	// Zero-coefficient reflectors are skipped entirely.
	multi.Reflectors[0].Coeff = 0
	if got := multi.ChannelPhase(ant, tag); !almostEq(got, pf, 1e-12) {
		t.Errorf("zero-coeff reflector changed phase: %v vs %v", got, pf)
	}
}

func TestChannelMagnitudeDecaysWithDistance(t *testing.T) {
	p, err := NewPropagation(DefaultBand())
	if err != nil {
		t.Fatal(err)
	}
	ant := geom.V3(0, 0, 0)
	m1 := p.ChannelMagnitude(ant, geom.V3(0, 0.5, 0))
	m2 := p.ChannelMagnitude(ant, geom.V3(0, 1.0, 0))
	if m2 >= m1 {
		t.Errorf("magnitude did not decay: %v then %v", m1, m2)
	}
	// Two-way free space: |h| = 1/d², so doubling distance quarters |g|
	// and divides |h| by 16... wait |h| = |g|² = 1/d².
	if !almostEq(m1/m2, 4, 1e-9) {
		t.Errorf("decay ratio = %v, want 4", m1/m2)
	}
}

func TestRSSI(t *testing.T) {
	if got := RSSI(1, 32); got != 32 {
		t.Errorf("RSSI(1) = %v", got)
	}
	if got := RSSI(0.1, 32); !almostEq(got, 12, 1e-9) {
		t.Errorf("RSSI(0.1) = %v", got)
	}
	if got := RSSI(0, 32); !math.IsInf(got, -1) {
		t.Errorf("RSSI(0) = %v", got)
	}
}

func TestNewPropagationValidates(t *testing.T) {
	if _, err := NewPropagation(Band{}); !errors.Is(err, ErrBadFrequency) {
		t.Errorf("err = %v", err)
	}
}

func TestZeroDistancePathIsFinite(t *testing.T) {
	p, err := NewPropagation(DefaultBand())
	if err != nil {
		t.Fatal(err)
	}
	h := p.Response(geom.V3(0, 0, 0), geom.V3(0, 0, 0))
	if math.IsNaN(real(h)) || math.IsInf(real(h), 0) {
		t.Errorf("coincident response not finite: %v", h)
	}
}

func TestBeamGain(t *testing.T) {
	b, err := NewBeam(geom.V3(0, 1, 0), DefaultBeamwidthRad)
	if err != nil {
		t.Fatal(err)
	}
	ant := geom.V3(0, 0, 0)
	// On boresight: unity gain.
	if got := b.Gain(ant, geom.V3(0, 1, 0)); !almostEq(got, 1, 1e-12) {
		t.Errorf("boresight gain = %v", got)
	}
	// At half beamwidth: −3 dB.
	half := DefaultBeamwidthRad / 2
	target := geom.V3(math.Sin(half), math.Cos(half), 0)
	if got := b.Gain(ant, target); !almostEq(got, 0.5, 1e-9) {
		t.Errorf("half-beamwidth gain = %v, want 0.5", got)
	}
	// Behind the antenna: floor gain.
	if got := b.Gain(ant, geom.V3(0, -1, 0)); got != b.FloorGain {
		t.Errorf("rear gain = %v, want floor %v", got, b.FloorGain)
	}
	// Coincident target: defined as unity.
	if got := b.Gain(ant, ant); got != 1 {
		t.Errorf("coincident gain = %v", got)
	}
}

func TestBeamGainMonotoneOffAxis(t *testing.T) {
	b, err := NewBeam(geom.V3(0, 1, 0), DefaultBeamwidthRad)
	if err != nil {
		t.Fatal(err)
	}
	ant := geom.V3(0, 0, 0)
	prev := math.Inf(1)
	for deg := 0; deg <= 90; deg += 5 {
		a := float64(deg) * math.Pi / 180
		g := b.Gain(ant, geom.V3(math.Sin(a), math.Cos(a), 0))
		if g > prev+1e-12 {
			t.Fatalf("gain increased off-axis at %d deg: %v > %v", deg, g, prev)
		}
		prev = g
	}
}

func TestBeamOffAxisAndNoiseScale(t *testing.T) {
	b, err := NewBeam(geom.V3(0, 1, 0), DefaultBeamwidthRad)
	if err != nil {
		t.Fatal(err)
	}
	ant := geom.V3(0, 0, 0)
	if got := b.OffAxisRad(ant, geom.V3(1, 0, 0)); !almostEq(got, math.Pi/2, 1e-12) {
		t.Errorf("OffAxis = %v", got)
	}
	if got := b.OffAxisRad(ant, ant); got != 0 {
		t.Errorf("OffAxis coincident = %v", got)
	}
	// Noise scale is 1 on boresight and grows off-axis.
	if got := b.NoiseScale(ant, geom.V3(0, 1, 0)); !almostEq(got, 1, 1e-12) {
		t.Errorf("boresight noise scale = %v", got)
	}
	if got := b.NoiseScale(ant, geom.V3(1, 0.2, 0)); got <= 1 {
		t.Errorf("off-axis noise scale = %v, want > 1", got)
	}
}

func TestNewBeamValidation(t *testing.T) {
	if _, err := NewBeam(geom.V3(0, 1, 0), 0); !errors.Is(err, ErrBadBeam) {
		t.Errorf("zero beamwidth err = %v", err)
	}
	if _, err := NewBeam(geom.V3(0, 1, 0), math.Pi); !errors.Is(err, ErrBadBeam) {
		t.Errorf("pi beamwidth err = %v", err)
	}
	if _, err := NewBeam(geom.Vec3{}, 1); err == nil {
		t.Error("zero boresight accepted")
	}
}
