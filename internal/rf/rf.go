// Package rf models the radio-frequency physics that an RFID reader
// observes: the backscatter phase equation of the LION paper (Eq. 1), phase
// wrapping, free-space and multipath propagation via the image method, and
// directional antenna beam patterns.
//
// The phase reported by a commercial reader for a tag at distance d is
//
//	θ = (2π/λ · 2d + θ_T + θ_R) mod 2π
//
// where θ_T and θ_R are constant offsets contributed by the tag's
// reflection characteristics and the reader's transmitter/receiver
// circuits. This package computes the distance-dependent part and the
// channel distortions; device offsets live in package sim.
package rf

import (
	"errors"
	"math"
	"math/cmplx"

	"github.com/rfid-lion/lion/internal/geom"
)

// SpeedOfLight is the propagation speed used throughout, in m/s.
const SpeedOfLight = 299792458.0

// DefaultFrequencyHz is the carrier used by the paper's testbed
// (Impinj Speedway R420 at 920.625 MHz).
const DefaultFrequencyHz = 920.625e6

// ErrBadFrequency is returned for non-positive carrier frequencies.
var ErrBadFrequency = errors.New("rf: carrier frequency must be positive")

// Band describes the carrier the reader transmits on.
type Band struct {
	FrequencyHz float64
}

// DefaultBand returns the paper's 920.625 MHz carrier.
func DefaultBand() Band { return Band{FrequencyHz: DefaultFrequencyHz} }

// Wavelength returns the carrier wavelength λ in metres.
func (b Band) Wavelength() float64 { return SpeedOfLight / b.FrequencyHz }

// Validate checks the band parameters.
func (b Band) Validate() error {
	if b.FrequencyHz <= 0 {
		return ErrBadFrequency
	}
	return nil
}

// WrapPhase maps an angle onto [0, 2π).
func WrapPhase(theta float64) float64 {
	t := math.Mod(theta, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
		// Negative angles within one ulp of zero round up to exactly 2π,
		// which would escape the half-open interval.
		if t >= 2*math.Pi {
			t = 0
		}
	}
	return t
}

// WrapPhaseSigned maps an angle onto (−π, π].
func WrapPhaseSigned(theta float64) float64 {
	t := WrapPhase(theta)
	if t > math.Pi {
		t -= 2 * math.Pi
	}
	return t
}

// PhaseOfDistance returns the unwrapped round-trip phase 4π·d/λ accumulated
// over the two-way backscatter path of length 2d.
func PhaseOfDistance(d, lambda float64) float64 {
	return 4 * math.Pi * d / lambda
}

// DistanceOfPhaseDelta converts an (unwrapped) phase difference to the
// corresponding one-way distance difference, Δd = λ/4π·Δθ (paper Eq. 6).
func DistanceOfPhaseDelta(dTheta, lambda float64) float64 {
	return lambda / (4 * math.Pi) * dTheta
}

// Reflector is a planar multipath reflector with an amplitude reflection
// coefficient in [0, 1]. Reflections are modelled with the image method: the
// reflected path from a to b has the length |a − mirror(b)|.
type Reflector struct {
	Plane geom.Plane3
	Coeff float64
}

// Image returns p mirrored across the reflector plane.
func (r Reflector) Image(p geom.Vec3) geom.Vec3 {
	n := r.Plane.Normal()
	nn := n.NormSq()
	if nn == 0 {
		return p
	}
	t := r.Plane.Eval(p) / nn
	return p.Sub(n.Scale(2 * t))
}

// Propagation describes the channel between a reader antenna and a tag:
// carrier wavelength plus any multipath reflectors in the environment.
type Propagation struct {
	Lambda     float64
	Reflectors []Reflector
}

// NewPropagation builds a free-space channel for the band.
func NewPropagation(b Band) (*Propagation, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &Propagation{Lambda: b.Wavelength()}, nil
}

// OneWay returns the complex one-way channel gain g between two points,
//
//	g = Σ_k a_k · exp(−j·2π·d_k/λ)
//
// summing the direct path (amplitude 1/d) and one image-method bounce per
// reflector (amplitude Γ_k/d_k).
func (p *Propagation) OneWay(a, b geom.Vec3) complex128 {
	g := pathTerm(a.Dist(b), 1, p.Lambda)
	for _, r := range p.Reflectors {
		if r.Coeff == 0 {
			continue
		}
		d := a.Dist(r.Image(b))
		g += pathTerm(d, r.Coeff, p.Lambda)
	}
	return g
}

func pathTerm(d, amp, lambda float64) complex128 {
	if d <= 0 {
		d = 1e-6
	}
	phase := -2 * math.Pi * d / lambda
	return cmplx.Rect(amp/d, phase)
}

// Response returns the two-way backscatter response h = g² for the channel
// between antenna and tag. With no reflectors, arg(h) = −4π·d/λ, matching
// PhaseOfDistance up to sign.
func (p *Propagation) Response(antenna, tag geom.Vec3) complex128 {
	g := p.OneWay(antenna, tag)
	return g * g
}

// ChannelPhase returns the wrapped distance-dependent phase the reader
// observes for the channel, θ_d = −arg(h) mod 2π. Device offsets are added
// by the caller.
func (p *Propagation) ChannelPhase(antenna, tag geom.Vec3) float64 {
	return WrapPhase(-cmplx.Phase(p.Response(antenna, tag)))
}

// ChannelMagnitude returns |h|, used to derive RSSI and SNR-dependent phase
// noise.
func (p *Propagation) ChannelMagnitude(antenna, tag geom.Vec3) float64 {
	return cmplx.Abs(p.Response(antenna, tag))
}

// RSSI converts a channel magnitude to a dBm-like received power figure.
// txPowerDBm is the transmit power (the paper uses 32 dBm).
func RSSI(magnitude, txPowerDBm float64) float64 {
	if magnitude <= 0 {
		return math.Inf(-1)
	}
	return txPowerDBm + 20*math.Log10(magnitude)
}
