package rf

import (
	"errors"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
)

// ErrBadBeam is returned for invalid beam parameters.
var ErrBadBeam = errors.New("rf: beamwidth must be in (0, π)")

// Beam models a directional antenna's power gain as a function of the angle
// off boresight with the classic cosᵠ pattern, calibrated so that the gain
// is −3 dB at half the beamwidth. The Laird S9028PCL panel antenna used by
// the paper has a ~70° half-power beamwidth.
type Beam struct {
	// Boresight is the antenna's pointing direction (need not be unit
	// length).
	Boresight geom.Vec3
	// BeamwidthRad is the full half-power beamwidth in radians.
	BeamwidthRad float64
	// FloorGain is the minimum power gain, modelling side lobes. Values
	// around 1e-3 (−30 dB) are realistic for a panel antenna.
	FloorGain float64

	exponent float64
}

// DefaultBeamwidthRad matches the Laird S9028PCL (~70 degrees).
const DefaultBeamwidthRad = 70 * math.Pi / 180

// NewBeam builds a beam pattern pointing along boresight with the given full
// half-power beamwidth.
func NewBeam(boresight geom.Vec3, beamwidthRad float64) (*Beam, error) {
	if beamwidthRad <= 0 || beamwidthRad >= math.Pi {
		return nil, ErrBadBeam
	}
	if boresight.Norm() == 0 {
		return nil, errors.New("rf: beam boresight must be non-zero")
	}
	b := &Beam{
		Boresight:    boresight.Unit(),
		BeamwidthRad: beamwidthRad,
		FloorGain:    1e-3,
	}
	// Solve cos(bw/2)^q = 1/2 so the pattern hits −3 dB at half beamwidth.
	c := math.Cos(beamwidthRad / 2)
	b.exponent = math.Log(0.5) / math.Log(c)
	return b, nil
}

// Gain returns the power gain toward the target point seen from the antenna
// position. Directions behind the antenna and beyond the pattern roll-off
// are clamped to FloorGain.
func (b *Beam) Gain(antenna, target geom.Vec3) float64 {
	dir := target.Sub(antenna)
	n := dir.Norm()
	if n == 0 {
		return 1
	}
	c := dir.Scale(1 / n).Dot(b.Boresight)
	if c <= 0 {
		return b.FloorGain
	}
	g := math.Pow(c, b.exponent)
	if g < b.FloorGain {
		return b.FloorGain
	}
	return g
}

// OffAxisRad returns the angle between boresight and the direction to the
// target, in radians.
func (b *Beam) OffAxisRad(antenna, target geom.Vec3) float64 {
	dir := target.Sub(antenna)
	n := dir.Norm()
	if n == 0 {
		return 0
	}
	c := dir.Scale(1 / n).Dot(b.Boresight)
	return math.Acos(math.Max(-1, math.Min(1, c)))
}

// NoiseScale converts the beam gain toward a target into a multiplier on the
// baseline phase-noise standard deviation: lower gain means lower SNR and
// therefore noisier phase, σ ∝ 1/√gain.
func (b *Beam) NoiseScale(antenna, target geom.Vec3) float64 {
	return 1 / math.Sqrt(b.Gain(antenna, target))
}
