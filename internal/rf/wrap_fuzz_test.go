package rf

import (
	"math"
	"testing"
)

// FuzzWrapPhase checks the wrap invariants over arbitrary angles: the
// result lies in [0, 2π), wrapping is idempotent (a second wrap is exactly
// the identity), and the signed variant is the same angle expressed in
// (−π, π].
func FuzzWrapPhase(f *testing.F) {
	for _, seed := range []float64{
		0, 1, -1, math.Pi, -math.Pi, 2 * math.Pi, -2 * math.Pi,
		6.3, -6.3, 1e9, -1e9, 1e-300, -1e-300, 4 * math.Pi,
		math.Nextafter(2*math.Pi, 0), math.Nextafter(0, -1),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, theta float64) {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			t.Skip("non-finite input")
		}
		w := WrapPhase(theta)
		if !(w >= 0 && w < 2*math.Pi) {
			t.Fatalf("WrapPhase(%v) = %v outside [0, 2π)", theta, w)
		}
		if ww := WrapPhase(w); ww != w {
			t.Fatalf("double wrap not idempotent: WrapPhase(%v) = %v, then %v", theta, w, ww)
		}
		s := WrapPhaseSigned(theta)
		if !(s > -math.Pi && s <= math.Pi) {
			t.Fatalf("WrapPhaseSigned(%v) = %v outside (−π, π]", theta, s)
		}
		// The signed and unsigned wraps must be the same angle: they differ
		// by exactly 0 or 2π, and re-wrapping the signed value recovers w.
		switch {
		case s == w, s == w-2*math.Pi:
		default:
			t.Fatalf("signed wrap %v inconsistent with unsigned %v (input %v)", s, w, theta)
		}
		if back := WrapPhase(s); back != w {
			t.Fatalf("WrapPhase(WrapPhaseSigned(%v)) = %v, want %v", theta, back, w)
		}
	})
}
