package dataset

import (
	"bytes"
	"reflect"
	"testing"
)

func TestNDJSONCodecRoundTrip(t *testing.T) {
	in := []TaggedSample{
		{Tag: "T1", TimeS: 0.25, X: 1, Y: -2, Z: 0.5, Phase: 3.1, RSSI: -61.5, Channel: 3},
		{Tag: "T2", TimeS: 0.5, X: -0.1, Phase: -1.5, Segment: -2},
	}
	var buf bytes.Buffer
	var c Codec = NDJSON{}
	if err := c.Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", out, in)
	}
}

// fakeCodec stands in for the wire codec, which dataset cannot import.
type fakeCodec struct{ NDJSON }

func (fakeCodec) Name() string        { return "fake" }
func (fakeCodec) ContentType() string { return "application/x-fake" }

func TestSelectCodec(t *testing.T) {
	codecs := []Codec{NDJSON{}, fakeCodec{}}
	cases := []struct {
		contentType string
		want        string
	}{
		{"", "ndjson"},
		{"application/x-ndjson", "ndjson"},
		{"application/x-fake", "fake"},
		{"APPLICATION/X-FAKE", "fake"},
		{"application/x-fake; charset=utf-8", "fake"},
		{"application/x-www-form-urlencoded", "ndjson"}, // curl --data-binary default
		{"application/json", "ndjson"},
		{"complete nonsense", "ndjson"},
	}
	for _, tc := range cases {
		if got := SelectCodec(codecs, tc.contentType).Name(); got != tc.want {
			t.Errorf("SelectCodec(%q) = %s, want %s", tc.contentType, got, tc.want)
		}
	}
	if SelectCodec(nil, "x") != nil {
		t.Error("empty codec list must select nil")
	}
}
