package dataset

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
)

func ndjsonTrace() []sim.Sample {
	return []sim.Sample{
		{Time: 0, TagPos: geom.V3(-0.5, 0, 0), Phase: 1.25, RSSI: -48.5, Segment: 1, Channel: 0},
		{Time: 10 * time.Millisecond, TagPos: geom.V3(-0.49, 0, 0), Phase: 1.5, RSSI: -48.6, Segment: 1, Channel: 2},
		{Time: 20 * time.Millisecond, TagPos: geom.V3(-0.48, 0, 0.125), Phase: 6.2, RSSI: -49.5, Segment: 2, Channel: 1},
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	trace := ndjsonTrace()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, "T7", trace); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := DecodeIngest(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(trace) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(trace))
	}
	for i, ts := range got {
		if ts.Tag != "T7" {
			t.Errorf("sample %d tag %q", i, ts.Tag)
		}
		if !reflect.DeepEqual(ts.Sample(), trace[i]) {
			t.Errorf("sample %d round-trip:\n got %+v\nwant %+v", i, ts.Sample(), trace[i])
		}
	}
}

func TestDecodeIngestEnvelope(t *testing.T) {
	body := `{"samples":[{"tag":"A","time_s":0.5,"x_m":1,"y_m":2,"z_m":3,"phase_rad":0.25},` +
		`{"tag":"B","time_s":0.6,"x_m":1,"y_m":2,"z_m":3,"phase_rad":0.5}]}`
	got, err := DecodeIngest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 2 || got[0].Tag != "A" || got[1].Tag != "B" {
		t.Fatalf("decoded %+v", got)
	}
	if got[0].Sample().Time != 500*time.Millisecond {
		t.Errorf("time = %v", got[0].Sample().Time)
	}
}

func TestDecodeIngestMixedShapes(t *testing.T) {
	body := `{"tag":"A","time_s":0,"x_m":0,"y_m":0,"z_m":0,"phase_rad":1}
{"samples":[{"tag":"B","time_s":1,"x_m":0,"y_m":0,"z_m":0,"phase_rad":2}]}
{"tag":"C","time_s":2,"x_m":0,"y_m":0,"z_m":0,"phase_rad":3}`
	got, err := DecodeIngest(strings.NewReader(body))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != 3 || got[0].Tag != "A" || got[1].Tag != "B" || got[2].Tag != "C" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestDecodeIngestRejections(t *testing.T) {
	cases := []struct {
		name, body string
		wantErr    error
	}{
		{"missing tag", `{"time_s":0,"phase_rad":1}`, ErrIngestSample},
		{"missing tag in envelope", `{"samples":[{"time_s":0,"phase_rad":1}]}`, ErrIngestSample},
		{"huge timestamp", `{"tag":"A","time_s":1e12,"phase_rad":1}`, ErrIngestSample},
		{"broken json", `{"tag":"A",`, nil},
		{"non-object", `[1,2,3]`, nil},
		{"nan is invalid json", `{"tag":"A","time_s":NaN,"phase_rad":1}`, nil},
		{"overflow number", `{"tag":"A","time_s":0,"phase_rad":1e999}`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeIngest(strings.NewReader(tc.body))
			if err == nil {
				t.Fatalf("body %q accepted", tc.body)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeIngestEmpty(t *testing.T) {
	got, err := DecodeIngest(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty body: %v, %v", got, err)
	}
}

// FuzzIngestDecode asserts the decoder never panics and that every accepted
// sample satisfies the documented invariants: non-empty tag, bounded
// timestamp, finite numeric fields.
func FuzzIngestDecode(f *testing.F) {
	f.Add(`{"tag":"T1","time_s":0.01,"x_m":-0.5,"y_m":0,"z_m":0,"phase_rad":1.25,"rssi_dbm":-48.5}`)
	f.Add(`{"samples":[{"tag":"A","time_s":0.5,"x_m":1,"y_m":2,"z_m":3,"phase_rad":0.25}]}`)
	f.Add("{\"tag\":\"a\",\"time_s\":1}\n{\"tag\":\"b\",\"time_s\":2}")
	f.Add(`{"samples":[]}`)
	f.Add(``)
	f.Add(`{"tag":"A"`)
	f.Add(`{"tag":"A","time_s":1e400}`)
	f.Add(`[{"tag":"A"}]`)
	f.Add(`null`)
	f.Add(`{"tag":"", "time_s":0}`)
	f.Fuzz(func(t *testing.T, body string) {
		samples, err := DecodeIngest(strings.NewReader(body))
		if err != nil {
			return
		}
		for i, s := range samples {
			if s.Tag == "" {
				t.Errorf("sample %d accepted without tag", i)
			}
			if math.Abs(s.TimeS) > MaxIngestTimeS {
				t.Errorf("sample %d time %v out of range", i, s.TimeS)
			}
			for _, v := range []float64{s.TimeS, s.X, s.Y, s.Z, s.Phase, s.RSSI} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Errorf("sample %d has non-finite field %v", i, v)
				}
			}
		}
	})
}
