package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"strings"
)

// Codec is one ingest encoding of tagged sample batches. The two
// implementations are NDJSON (this package — the compatibility format) and
// the binary frame format (internal/wire — the hot-path format); liond and
// lionroute pick between them per request by Content-Type.
//
// Decode returns only validated samples: non-empty tags, finite floats, and
// timestamps within ±MaxIngestTimeS, never more than MaxIngestSamples of
// them. Encode output must round-trip through Decode bit-exactly — both
// codecs preserve the float64 payload (NDJSON via Go's shortest-round-trip
// float formatting, wire via raw IEEE 754 bits).
type Codec interface {
	// Name identifies the codec in flags and logs ("ndjson", "wire").
	Name() string
	// ContentType is the exact HTTP content type the codec serves.
	ContentType() string
	// Decode parses one request body.
	Decode(r io.Reader) ([]TaggedSample, error)
	// Encode writes samples in this codec's format.
	Encode(w io.Writer, samples []TaggedSample) error
}

// NDJSONContentType is the content type of newline-delimited JSON ingest
// bodies. Requests with no content type (or any other non-wire type) are
// treated as NDJSON for compatibility with curl-style clients.
const NDJSONContentType = "application/x-ndjson"

// NDJSON is the JSON-lines Codec: one sample object or {"samples": [...]}
// envelope per line, exactly what DecodeIngest accepts.
type NDJSON struct{}

// Name identifies the codec in flags and logs.
func (NDJSON) Name() string { return "ndjson" }

// ContentType is the HTTP content type the codec serves.
func (NDJSON) ContentType() string { return NDJSONContentType }

// Decode parses NDJSON sample lines and envelopes.
func (NDJSON) Decode(r io.Reader) ([]TaggedSample, error) { return DecodeIngest(r) }

// Encode writes samples as one {"samples": [...]} envelope line, the densest
// of the shapes Decode accepts.
func (NDJSON) Encode(w io.Writer, samples []TaggedSample) error {
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(struct {
		Samples []TaggedSample `json:"samples"`
	}{samples}); err != nil {
		return fmt.Errorf("dataset: encode ingest envelope: %w", err)
	}
	return bw.Flush()
}

// SelectCodec picks the codec whose ContentType matches the request's
// Content-Type header (parameters like charset are ignored). Any other
// content type — including none at all — falls back to the first codec in
// the list, by convention the NDJSON compatibility codec: curl-style clients
// send arbitrary types (`--data-binary` defaults to
// application/x-www-form-urlencoded) and have always been decoded as NDJSON.
func SelectCodec(codecs []Codec, contentType string) Codec {
	if len(codecs) == 0 {
		return nil
	}
	mt := strings.TrimSpace(contentType)
	if mt != "" {
		if parsed, _, err := mime.ParseMediaType(mt); err == nil {
			mt = parsed
		}
	}
	for _, c := range codecs {
		if strings.EqualFold(mt, c.ContentType()) {
			return c
		}
	}
	return codecs[0]
}
