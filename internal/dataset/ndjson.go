package dataset

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
)

// TaggedSample is the wire form of one read in the liond ingest API: a tag
// id plus the fields of the CSV format. It appears either as one JSON object
// per line (NDJSON, what `lionsim -format ndjson` emits) or inside the
// batched envelope {"samples": [...]}.
type TaggedSample struct {
	Tag     string  `json:"tag"`
	TimeS   float64 `json:"time_s"`
	X       float64 `json:"x_m"`
	Y       float64 `json:"y_m"`
	Z       float64 `json:"z_m"`
	Phase   float64 `json:"phase_rad"`
	RSSI    float64 `json:"rssi_dbm,omitempty"`
	Segment int     `json:"segment,omitempty"`
	Channel int     `json:"channel,omitempty"`
}

// Tagged couples a tag id with one simulator read.
func Tagged(tag string, s sim.Sample) TaggedSample {
	return TaggedSample{
		Tag:     tag,
		TimeS:   s.Time.Seconds(),
		X:       s.TagPos.X,
		Y:       s.TagPos.Y,
		Z:       s.TagPos.Z,
		Phase:   s.Phase,
		RSSI:    s.RSSI,
		Segment: s.Segment,
		Channel: s.Channel,
	}
}

// Sample converts the wire form back into a simulator read.
func (t TaggedSample) Sample() sim.Sample {
	return sim.Sample{
		Time:    time.Duration(t.TimeS * float64(time.Second)),
		TagPos:  geom.V3(t.X, t.Y, t.Z),
		Phase:   t.Phase,
		RSSI:    t.RSSI,
		Segment: t.Segment,
		Channel: t.Channel,
	}
}

// Ingest decode limits: a hard cap on accepted samples per request and on
// the magnitude of a timestamp (1e9 s ≈ 31 years keeps the conversion to
// time.Duration far from int64 overflow).
const (
	MaxIngestSamples = 1 << 20
	MaxIngestTimeS   = 1e9
)

// Errors returned by DecodeIngest.
var (
	// ErrIngestTooLarge is returned when a request exceeds MaxIngestSamples.
	ErrIngestTooLarge = errors.New("dataset: ingest request too large")
	// ErrIngestSample is returned for a structurally valid JSON value that is
	// not a usable sample (missing tag, out-of-range timestamp).
	ErrIngestSample = errors.New("dataset: bad ingest sample")
)

// ingestValue accepts both wire shapes: a bare sample object, or the batch
// envelope. When Samples is non-nil the envelope wins.
type ingestValue struct {
	TaggedSample
	Samples []TaggedSample `json:"samples"`
}

// WriteNDJSON streams samples to w as newline-delimited JSON ingest lines,
// ready to pipe into liond's POST /v1/samples.
func WriteNDJSON(w io.Writer, tag string, samples []sim.Sample) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, s := range samples {
		if err := enc.Encode(Tagged(tag, s)); err != nil {
			return fmt.Errorf("dataset: encode sample %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// DecodeIngest parses an ingest request body: any mix of NDJSON sample lines
// and {"samples": [...]} envelopes, concatenated. Every returned sample has
// a non-empty tag and a timestamp within ±MaxIngestTimeS seconds; phases and
// coordinates are finite by construction (JSON cannot encode NaN or ±Inf,
// and out-of-range numbers fail to decode).
func DecodeIngest(r io.Reader) ([]TaggedSample, error) {
	dec := json.NewDecoder(r)
	var out []TaggedSample
	for {
		var v ingestValue
		if err := dec.Decode(&v); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("dataset: decode ingest: %w", err)
		}
		batch := v.Samples
		if batch == nil {
			batch = []TaggedSample{v.TaggedSample}
		}
		if len(out)+len(batch) > MaxIngestSamples {
			return nil, fmt.Errorf("%w: over %d samples", ErrIngestTooLarge, MaxIngestSamples)
		}
		for i, ts := range batch {
			if ts.Tag == "" {
				return nil, fmt.Errorf("%w: sample %d has no tag", ErrIngestSample, len(out)+i)
			}
			if math.Abs(ts.TimeS) > MaxIngestTimeS {
				return nil, fmt.Errorf("%w: sample %d time %v out of range", ErrIngestSample, len(out)+i, ts.TimeS)
			}
		}
		out = append(out, batch...)
	}
}
