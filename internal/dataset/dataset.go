// Package dataset reads and writes scan datasets as CSV, the interchange
// format between the lionsim generator, the lioncal calibration tool, and
// any real logger (e.g. an LLRP client) a user might substitute.
//
// The format is one header line followed by one row per read:
//
//	time_s,x_m,y_m,z_m,phase_rad,rssi_dbm,segment,channel
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
)

// Header is the canonical CSV header row.
var Header = []string{"time_s", "x_m", "y_m", "z_m", "phase_rad", "rssi_dbm", "segment", "channel"}

// ErrBadHeader is returned when the CSV header does not match Header.
var ErrBadHeader = errors.New("dataset: unexpected CSV header")

// Write streams samples to w as CSV.
func Write(w io.Writer, samples []sim.Sample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	row := make([]string, len(Header))
	for _, s := range samples {
		row[0] = strconv.FormatFloat(s.Time.Seconds(), 'f', 6, 64)
		row[1] = strconv.FormatFloat(s.TagPos.X, 'f', 6, 64)
		row[2] = strconv.FormatFloat(s.TagPos.Y, 'f', 6, 64)
		row[3] = strconv.FormatFloat(s.TagPos.Z, 'f', 6, 64)
		row[4] = strconv.FormatFloat(s.Phase, 'f', 8, 64)
		row[5] = strconv.FormatFloat(s.RSSI, 'f', 3, 64)
		row[6] = strconv.Itoa(s.Segment)
		row[7] = strconv.Itoa(s.Channel)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses a CSV dataset from r.
func Read(r io.Reader) ([]sim.Sample, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(Header)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	for i, h := range Header {
		if head[i] != h {
			return nil, fmt.Errorf("column %d is %q, want %q: %w",
				i, head[i], h, ErrBadHeader)
		}
	}
	var out []sim.Sample
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("read line %d: %w", line, err)
		}
		vals := make([]float64, 6)
		for i := 0; i < 6; i++ {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d column %q: %w", line, Header[i], err)
			}
			vals[i] = v
		}
		seg, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("line %d column segment: %w", line, err)
		}
		channel, err := strconv.Atoi(rec[7])
		if err != nil {
			return nil, fmt.Errorf("line %d column channel: %w", line, err)
		}
		out = append(out, sim.Sample{
			Time:    time.Duration(vals[0] * float64(time.Second)),
			TagPos:  geom.V3(vals[1], vals[2], vals[3]),
			Phase:   vals[4],
			RSSI:    vals[5],
			Segment: seg,
			Channel: channel,
		})
	}
}
