package dataset

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	in := []sim.Sample{
		{
			Time:    1500 * time.Millisecond,
			TagPos:  geom.V3(0.1, -0.2, 0.3),
			Phase:   3.14159,
			RSSI:    -55.5,
			Segment: 2,
			Channel: 1,
		},
		{
			Time:    1510 * time.Millisecond,
			TagPos:  geom.V3(0.11, -0.2, 0.3),
			Phase:   3.21,
			RSSI:    -55.6,
			Segment: 2,
			Channel: 2,
		},
	}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Segment != in[i].Segment {
			t.Errorf("sample %d segment = %d", i, out[i].Segment)
		}
		if out[i].Channel != in[i].Channel {
			t.Errorf("sample %d channel = %d", i, out[i].Channel)
		}
		if d := out[i].TagPos.Dist(in[i].TagPos); d > 1e-5 {
			t.Errorf("sample %d position off by %v", i, d)
		}
		if d := out[i].Phase - in[i].Phase; d > 1e-7 || d < -1e-7 {
			t.Errorf("sample %d phase delta %v", i, d)
		}
		if d := out[i].Time - in[i].Time; d > time.Microsecond || d < -time.Microsecond {
			t.Errorf("sample %d time delta %v", i, d)
		}
	}
}

func TestWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("read %d samples from empty dataset", len(out))
	}
}

func TestReadRejectsBadHeader(t *testing.T) {
	r := strings.NewReader("a,b,c,d,e,f,g,h\n1,2,3,4,5,6,7,8\n")
	if _, err := Read(r); !errors.Is(err, ErrBadHeader) {
		t.Errorf("err = %v, want ErrBadHeader", err)
	}
}

func TestReadRejectsMalformedRows(t *testing.T) {
	head := strings.Join(Header, ",") + "\n"
	cases := []string{
		head + "x,0,0,0,0,0,0,0\n",     // bad float
		head + "0,0,0,0,0,0,x,0\n",     // bad segment
		head + "0,0,0,0,0,0,0,x\n",     // bad channel
		head + "0,0,0,0,0,0\n",         // short row
		head + "0,0,0,0,0,0,0,0,0,0\n", // long row
	}
	for i, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed row accepted", i)
		}
	}
}

func TestReadEmptyInput(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}
