// Package traject defines the known tag trajectories that LION scans along:
// straight lines, polylines, the three-line 3-D scan of the paper's Fig. 11,
// and circular turntable motion. A trajectory maps elapsed time to the tag's
// ground-truth position; the simulator samples it at the reader's rate.
package traject

import (
	"errors"
	"math"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
)

// Errors returned by trajectory constructors.
var (
	ErrBadSpeed  = errors.New("traject: speed must be positive")
	ErrTooShort  = errors.New("traject: trajectory needs at least two distinct points")
	ErrBadRadius = errors.New("traject: radius must be positive")
)

// Trajectory maps elapsed time to the tag position. Implementations must be
// defined for all t in [0, Duration()]; times outside the range clamp to the
// endpoints.
type Trajectory interface {
	// Position returns the tag position at elapsed time t.
	Position(t time.Duration) geom.Vec3
	// Duration returns the total scan time.
	Duration() time.Duration
}

// Segmented is implemented by trajectories made of labelled segments, such
// as the three-line scan. Segment labels start at 1; label 0 marks transfer
// moves between scan lines.
type Segmented interface {
	Trajectory
	// SegmentAt returns the label of the segment active at elapsed time t.
	SegmentAt(t time.Duration) int
}

// Linear is constant-speed motion along a straight segment.
type Linear struct {
	seg   geom.Segment3
	speed float64 // m/s
	dur   time.Duration
}

var _ Trajectory = (*Linear)(nil)

// NewLinear returns a linear trajectory from one point to another at the
// given speed in m/s.
func NewLinear(from, to geom.Vec3, speed float64) (*Linear, error) {
	if speed <= 0 {
		return nil, ErrBadSpeed
	}
	length := from.Dist(to)
	if length == 0 {
		return nil, ErrTooShort
	}
	return &Linear{
		seg:   geom.Segment3{From: from, To: to},
		speed: speed,
		dur:   time.Duration(length / speed * float64(time.Second)),
	}, nil
}

// Position implements Trajectory.
func (l *Linear) Position(t time.Duration) geom.Vec3 {
	if t <= 0 {
		return l.seg.From
	}
	if t >= l.dur {
		return l.seg.To
	}
	return l.seg.At(float64(t) / float64(l.dur))
}

// Duration implements Trajectory.
func (l *Linear) Duration() time.Duration { return l.dur }

// Speed returns the tag speed in m/s.
func (l *Linear) Speed() float64 { return l.speed }

// Polyline is constant-speed motion along a sequence of waypoints.
type Polyline struct {
	points []geom.Vec3
	cum    []float64 // cumulative arc length at each waypoint
	speed  float64
	total  float64
}

var _ Trajectory = (*Polyline)(nil)

// NewPolyline returns a polyline trajectory visiting points in order at the
// given speed in m/s. Consecutive duplicate points are allowed and skipped.
func NewPolyline(points []geom.Vec3, speed float64) (*Polyline, error) {
	if speed <= 0 {
		return nil, ErrBadSpeed
	}
	if len(points) < 2 {
		return nil, ErrTooShort
	}
	pts := make([]geom.Vec3, len(points))
	copy(pts, points)
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + pts[i-1].Dist(pts[i])
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return nil, ErrTooShort
	}
	return &Polyline{points: pts, cum: cum, speed: speed, total: total}, nil
}

// Position implements Trajectory.
func (p *Polyline) Position(t time.Duration) geom.Vec3 {
	s := p.speed * t.Seconds()
	if s <= 0 {
		return p.points[0]
	}
	if s >= p.total {
		return p.points[len(p.points)-1]
	}
	i := p.segmentIndex(s)
	segLen := p.cum[i+1] - p.cum[i]
	frac := (s - p.cum[i]) / segLen
	return p.points[i].Lerp(p.points[i+1], frac)
}

// segmentIndex returns the index i such that cum[i] <= s < cum[i+1],
// skipping zero-length segments.
func (p *Polyline) segmentIndex(s float64) int {
	lo, hi := 0, len(p.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= s {
			lo = mid
		} else {
			hi = mid
		}
	}
	for lo < len(p.cum)-2 && p.cum[lo+1] == p.cum[lo] {
		lo++
	}
	return lo
}

// SegmentIndexAt returns the zero-based index of the polyline edge active at
// elapsed time t.
func (p *Polyline) SegmentIndexAt(t time.Duration) int {
	s := p.speed * t.Seconds()
	if s <= 0 {
		return 0
	}
	if s >= p.total {
		return len(p.points) - 2
	}
	return p.segmentIndex(s)
}

// Duration implements Trajectory.
func (p *Polyline) Duration() time.Duration {
	return time.Duration(p.total / p.speed * float64(time.Second))
}

// Length returns the total arc length in metres.
func (p *Polyline) Length() float64 { return p.total }

// Circular is constant-speed motion around a circle, modelling the paper's
// turntable scan (Sec. V-F-2). The circle lies in the plane spanned by two
// orthonormal axes U and V through Center.
type Circular struct {
	center     geom.Vec3
	radius     float64
	u, v       geom.Vec3
	angSpeed   float64 // rad/s
	startAngle float64
	turns      float64
}

var _ Trajectory = (*Circular)(nil)

// NewCircularXY returns a circular trajectory in a z = const plane, starting
// at startAngle (radians from the +x axis) and covering turns full
// revolutions at the given tangential speed in m/s.
func NewCircularXY(center geom.Vec3, radius, speed, startAngle, turns float64) (*Circular, error) {
	return NewCircular(center, radius, geom.V3(1, 0, 0), geom.V3(0, 1, 0),
		speed, startAngle, turns)
}

// NewCircular returns a circular trajectory in the plane spanned by u and v
// (which must be non-zero and not parallel; they are orthonormalised).
func NewCircular(center geom.Vec3, radius float64, u, v geom.Vec3, speed, startAngle, turns float64) (*Circular, error) {
	if radius <= 0 {
		return nil, ErrBadRadius
	}
	if speed <= 0 {
		return nil, ErrBadSpeed
	}
	if turns <= 0 {
		return nil, errors.New("traject: turns must be positive")
	}
	uu := u.Unit()
	if uu.Norm() == 0 {
		return nil, errors.New("traject: u axis must be non-zero")
	}
	// Gram-Schmidt v against u.
	vv := v.Sub(uu.Scale(v.Dot(uu)))
	if vv.Norm() == 0 {
		return nil, errors.New("traject: v axis parallel to u")
	}
	return &Circular{
		center:     center,
		radius:     radius,
		u:          uu,
		v:          vv.Unit(),
		angSpeed:   speed / radius,
		startAngle: startAngle,
		turns:      turns,
	}, nil
}

// Position implements Trajectory.
func (c *Circular) Position(t time.Duration) geom.Vec3 {
	ts := t.Seconds()
	maxT := c.Duration().Seconds()
	if ts < 0 {
		ts = 0
	}
	if ts > maxT {
		ts = maxT
	}
	ang := c.startAngle + c.angSpeed*ts
	s, cs := math.Sincos(ang)
	return c.center.
		Add(c.u.Scale(c.radius * cs)).
		Add(c.v.Scale(c.radius * s))
}

// Duration implements Trajectory.
func (c *Circular) Duration() time.Duration {
	total := c.turns * 2 * math.Pi / c.angSpeed
	return time.Duration(total * float64(time.Second))
}

// Radius returns the circle radius.
func (c *Circular) Radius() float64 { return c.radius }

// Center returns the circle center.
func (c *Circular) Center() geom.Vec3 { return c.center }
