package traject

import (
	"errors"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
)

// Line labels for ThreeLineScan.SegmentAt. Transfer moves between scan lines
// are labelled LineTransfer.
const (
	LineTransfer = 0
	LineL1       = 1
	LineL2       = 2
	LineL3       = 3
)

// ThreeLineScan is the paper's Fig. 11 scanning pattern for 3-D antenna
// localization: three parallel straight lines along the x-axis,
//
//	L1: (x, 0, 0)        for x in [XMin, XMax]
//	L2: (x, 0, ZSpacing) — offset along z
//	L3: (x, −YSpacing, 0) — offset along −y
//
// The tag traverses L1, transfers to L2, traverses L2 backwards, transfers
// to L3, and traverses L3 forwards, so the phase profile stays continuous
// for unwrapping (Sec. IV-B). The combination yields displacement diversity
// along all three axes, which is what makes the structured coefficient
// matrix of Eq. (11) full rank.
type ThreeLineScan struct {
	poly *Polyline
	// Per-edge labels: which scan line each polyline edge belongs to.
	edgeLabels []int

	xMin, xMax float64
	ySpacing   float64
	zSpacing   float64
}

var _ Segmented = (*ThreeLineScan)(nil)

// ThreeLineConfig parameterises a ThreeLineScan.
type ThreeLineConfig struct {
	XMin, XMax float64 // scan extent along x, metres
	YSpacing   float64 // y_o: spacing between L1 and L3, metres
	ZSpacing   float64 // z_o: spacing between L1 and L2, metres
	Speed      float64 // tag speed, m/s
}

// NewThreeLineScan builds the three-line trajectory.
func NewThreeLineScan(cfg ThreeLineConfig) (*ThreeLineScan, error) {
	if cfg.XMax <= cfg.XMin {
		return nil, errors.New("traject: XMax must exceed XMin")
	}
	if cfg.YSpacing <= 0 || cfg.ZSpacing <= 0 {
		return nil, errors.New("traject: line spacings must be positive")
	}
	if cfg.Speed <= 0 {
		return nil, ErrBadSpeed
	}
	pts := []geom.Vec3{
		{X: cfg.XMin, Y: 0, Z: 0},             // L1 start
		{X: cfg.XMax, Y: 0, Z: 0},             // L1 end
		{X: cfg.XMax, Y: 0, Z: cfg.ZSpacing},  // transfer up to L2
		{X: cfg.XMin, Y: 0, Z: cfg.ZSpacing},  // L2 traversed backwards
		{X: cfg.XMin, Y: -cfg.YSpacing, Z: 0}, // transfer down/over to L3
		{X: cfg.XMax, Y: -cfg.YSpacing, Z: 0}, // L3 end
	}
	poly, err := NewPolyline(pts, cfg.Speed)
	if err != nil {
		return nil, err
	}
	return &ThreeLineScan{
		poly:       poly,
		edgeLabels: []int{LineL1, LineTransfer, LineL2, LineTransfer, LineL3},
		xMin:       cfg.XMin,
		xMax:       cfg.XMax,
		ySpacing:   cfg.YSpacing,
		zSpacing:   cfg.ZSpacing,
	}, nil
}

// Position implements Trajectory.
func (s *ThreeLineScan) Position(t time.Duration) geom.Vec3 {
	return s.poly.Position(t)
}

// Duration implements Trajectory.
func (s *ThreeLineScan) Duration() time.Duration { return s.poly.Duration() }

// SegmentAt implements Segmented: it returns LineL1/LineL2/LineL3 while the
// tag is on a scan line, or LineTransfer during a connecting move.
func (s *ThreeLineScan) SegmentAt(t time.Duration) int {
	return s.edgeLabels[s.poly.SegmentIndexAt(t)]
}

// XRange returns the scan extent along x.
func (s *ThreeLineScan) XRange() (xMin, xMax float64) { return s.xMin, s.xMax }

// YSpacing returns y_o, the L1–L3 spacing.
func (s *ThreeLineScan) YSpacing() float64 { return s.ySpacing }

// ZSpacing returns z_o, the L1–L2 spacing.
func (s *ThreeLineScan) ZSpacing() float64 { return s.zSpacing }

// TwoLineScan is the reduced scanning pattern used for the 3-D
// lower-dimension experiments (Fig. 14a): the tag traverses L1 and then a
// second parallel line offset along −y, staying in the z = 0 plane. The
// missing z-coordinate is recovered from the reference distance d_r.
type TwoLineScan struct {
	poly       *Polyline
	edgeLabels []int
	xMin, xMax float64
	ySpacing   float64
}

var _ Segmented = (*TwoLineScan)(nil)

// NewTwoLineScan builds the two-line planar trajectory.
func NewTwoLineScan(xMin, xMax, ySpacing, speed float64) (*TwoLineScan, error) {
	if xMax <= xMin {
		return nil, errors.New("traject: XMax must exceed XMin")
	}
	if ySpacing <= 0 {
		return nil, errors.New("traject: ySpacing must be positive")
	}
	if speed <= 0 {
		return nil, ErrBadSpeed
	}
	pts := []geom.Vec3{
		{X: xMin, Y: 0, Z: 0},
		{X: xMax, Y: 0, Z: 0},
		{X: xMax, Y: -ySpacing, Z: 0},
		{X: xMin, Y: -ySpacing, Z: 0},
	}
	poly, err := NewPolyline(pts, speed)
	if err != nil {
		return nil, err
	}
	return &TwoLineScan{
		poly:       poly,
		edgeLabels: []int{LineL1, LineTransfer, LineL2},
		xMin:       xMin,
		xMax:       xMax,
		ySpacing:   ySpacing,
	}, nil
}

// Position implements Trajectory.
func (s *TwoLineScan) Position(t time.Duration) geom.Vec3 {
	return s.poly.Position(t)
}

// Duration implements Trajectory.
func (s *TwoLineScan) Duration() time.Duration { return s.poly.Duration() }

// SegmentAt implements Segmented.
func (s *TwoLineScan) SegmentAt(t time.Duration) int {
	return s.edgeLabels[s.poly.SegmentIndexAt(t)]
}

// XRange returns the scan extent along x.
func (s *TwoLineScan) XRange() (xMin, xMax float64) { return s.xMin, s.xMax }

// YSpacing returns the spacing between the two lines.
func (s *TwoLineScan) YSpacing() float64 { return s.ySpacing }
