package traject

import (
	"errors"
	"math"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b geom.Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestLinearEndpointsAndMidpoint(t *testing.T) {
	l, err := NewLinear(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Duration(); got != 10*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := l.Position(0); got != geom.V3(0, 0, 0) {
		t.Errorf("start = %v", got)
	}
	if got := l.Position(10 * time.Second); got != geom.V3(1, 0, 0) {
		t.Errorf("end = %v", got)
	}
	if got := l.Position(5 * time.Second); !vecAlmostEq(got, geom.V3(0.5, 0, 0), 1e-9) {
		t.Errorf("mid = %v", got)
	}
	// Clamping outside the range.
	if got := l.Position(-time.Second); got != geom.V3(0, 0, 0) {
		t.Errorf("before start = %v", got)
	}
	if got := l.Position(time.Hour); got != geom.V3(1, 0, 0) {
		t.Errorf("after end = %v", got)
	}
	if got := l.Speed(); got != 0.1 {
		t.Errorf("Speed = %v", got)
	}
}

func TestLinearValidation(t *testing.T) {
	if _, err := NewLinear(geom.V3(0, 0, 0), geom.V3(1, 0, 0), 0); !errors.Is(err, ErrBadSpeed) {
		t.Errorf("zero speed err = %v", err)
	}
	if _, err := NewLinear(geom.V3(1, 1, 1), geom.V3(1, 1, 1), 1); !errors.Is(err, ErrTooShort) {
		t.Errorf("degenerate err = %v", err)
	}
}

func TestPolylineTraversal(t *testing.T) {
	p, err := NewPolyline([]geom.Vec3{
		{X: 0}, {X: 1}, {X: 1, Y: 1},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Length(); got != 2 {
		t.Errorf("Length = %v", got)
	}
	if got := p.Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v", got)
	}
	if got := p.Position(500 * time.Millisecond); !vecAlmostEq(got, geom.V3(0.5, 0, 0), 1e-9) {
		t.Errorf("first edge pos = %v", got)
	}
	if got := p.Position(1500 * time.Millisecond); !vecAlmostEq(got, geom.V3(1, 0.5, 0), 1e-9) {
		t.Errorf("second edge pos = %v", got)
	}
	if got := p.SegmentIndexAt(500 * time.Millisecond); got != 0 {
		t.Errorf("segment at 0.5s = %d", got)
	}
	if got := p.SegmentIndexAt(1500 * time.Millisecond); got != 1 {
		t.Errorf("segment at 1.5s = %d", got)
	}
	if got := p.SegmentIndexAt(time.Hour); got != 1 {
		t.Errorf("segment past end = %d", got)
	}
}

func TestPolylineValidation(t *testing.T) {
	if _, err := NewPolyline([]geom.Vec3{{X: 1}}, 1); !errors.Is(err, ErrTooShort) {
		t.Errorf("single point err = %v", err)
	}
	if _, err := NewPolyline([]geom.Vec3{{X: 1}, {X: 1}}, 1); !errors.Is(err, ErrTooShort) {
		t.Errorf("zero-length err = %v", err)
	}
	if _, err := NewPolyline([]geom.Vec3{{}, {X: 1}}, -1); !errors.Is(err, ErrBadSpeed) {
		t.Errorf("negative speed err = %v", err)
	}
}

func TestPolylineDefensiveCopy(t *testing.T) {
	pts := []geom.Vec3{{X: 0}, {X: 1}}
	p, err := NewPolyline(pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts[0] = geom.V3(99, 99, 99)
	if got := p.Position(0); got != geom.V3(0, 0, 0) {
		t.Error("polyline aliased caller slice")
	}
}

func TestCircularXY(t *testing.T) {
	c, err := NewCircularXY(geom.V3(0, 0, 0.5), 0.3, 0.1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Starts at angle 0: (r, 0, z).
	if got := c.Position(0); !vecAlmostEq(got, geom.V3(0.3, 0, 0.5), 1e-9) {
		t.Errorf("start = %v", got)
	}
	// Every position is on the circle.
	for i := 0; i <= 20; i++ {
		frac := float64(i) / 20
		pos := c.Position(time.Duration(frac * float64(c.Duration())))
		d := pos.Sub(c.Center()).Norm()
		if !almostEq(d, 0.3, 1e-9) {
			t.Errorf("at %v: radius = %v", frac, d)
		}
		if !almostEq(pos.Z, 0.5, 1e-12) {
			t.Errorf("left the plane: z = %v", pos.Z)
		}
	}
	// One full turn returns to the start.
	if got := c.Position(c.Duration()); !vecAlmostEq(got, c.Position(0), 1e-6) {
		t.Errorf("after one turn = %v", got)
	}
	// Duration = circumference / speed.
	want := 2 * math.Pi * 0.3 / 0.1
	if got := c.Duration().Seconds(); !almostEq(got, want, 1e-6) {
		t.Errorf("Duration = %v s, want %v", got, want)
	}
}

func TestCircularValidation(t *testing.T) {
	if _, err := NewCircularXY(geom.Vec3{}, 0, 1, 0, 1); !errors.Is(err, ErrBadRadius) {
		t.Errorf("zero radius err = %v", err)
	}
	if _, err := NewCircularXY(geom.Vec3{}, 1, 0, 0, 1); !errors.Is(err, ErrBadSpeed) {
		t.Errorf("zero speed err = %v", err)
	}
	if _, err := NewCircularXY(geom.Vec3{}, 1, 1, 0, 0); err == nil {
		t.Error("zero turns accepted")
	}
	if _, err := NewCircular(geom.Vec3{}, 1, geom.V3(1, 0, 0), geom.V3(2, 0, 0), 1, 0, 1); err == nil {
		t.Error("parallel axes accepted")
	}
	if _, err := NewCircular(geom.Vec3{}, 1, geom.Vec3{}, geom.V3(0, 1, 0), 1, 0, 1); err == nil {
		t.Error("zero u axis accepted")
	}
}

func TestCircularGramSchmidt(t *testing.T) {
	// Non-orthogonal axes are orthonormalised; the path must stay a circle.
	c, err := NewCircular(geom.V3(1, 1, 1), 0.5,
		geom.V3(1, 0, 0), geom.V3(1, 1, 0), 0.2, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= 10; i++ {
		pos := c.Position(time.Duration(float64(i) / 10 * float64(c.Duration())))
		if d := pos.Sub(geom.V3(1, 1, 1)).Norm(); !almostEq(d, 0.5, 1e-9) {
			t.Errorf("radius drifted: %v", d)
		}
	}
}

func TestThreeLineScanGeometry(t *testing.T) {
	scan, err := NewThreeLineScan(ThreeLineConfig{
		XMin: -0.4, XMax: 0.4, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := scan.Position(0); got != geom.V3(-0.4, 0, 0) {
		t.Errorf("start = %v", got)
	}
	end := scan.Position(scan.Duration())
	if !vecAlmostEq(end, geom.V3(0.4, -0.2, 0), 1e-9) {
		t.Errorf("end = %v", end)
	}
	// Visit every label over the run.
	seen := map[int]bool{}
	n := 1000
	for i := 0; i <= n; i++ {
		tt := time.Duration(float64(i) / float64(n) * float64(scan.Duration()))
		label := scan.SegmentAt(tt)
		seen[label] = true
		pos := scan.Position(tt)
		switch label {
		case LineL1:
			if !almostEq(pos.Y, 0, 1e-9) || !almostEq(pos.Z, 0, 1e-9) {
				t.Fatalf("L1 point off line: %v", pos)
			}
		case LineL2:
			if !almostEq(pos.Y, 0, 1e-9) || !almostEq(pos.Z, 0.2, 1e-9) {
				t.Fatalf("L2 point off line: %v", pos)
			}
		case LineL3:
			if !almostEq(pos.Y, -0.2, 1e-9) || !almostEq(pos.Z, 0, 1e-9) {
				t.Fatalf("L3 point off line: %v", pos)
			}
		}
	}
	for _, label := range []int{LineL1, LineL2, LineL3, LineTransfer} {
		if !seen[label] {
			t.Errorf("label %d never seen", label)
		}
	}
	xMin, xMax := scan.XRange()
	if xMin != -0.4 || xMax != 0.4 {
		t.Errorf("XRange = %v, %v", xMin, xMax)
	}
	if scan.YSpacing() != 0.2 || scan.ZSpacing() != 0.2 {
		t.Errorf("spacings = %v, %v", scan.YSpacing(), scan.ZSpacing())
	}
}

func TestThreeLineScanValidation(t *testing.T) {
	base := ThreeLineConfig{XMin: -1, XMax: 1, YSpacing: 0.2, ZSpacing: 0.2, Speed: 0.1}
	bad := base
	bad.XMax = -1
	if _, err := NewThreeLineScan(bad); err == nil {
		t.Error("XMax <= XMin accepted")
	}
	bad = base
	bad.YSpacing = 0
	if _, err := NewThreeLineScan(bad); err == nil {
		t.Error("zero YSpacing accepted")
	}
	bad = base
	bad.Speed = 0
	if _, err := NewThreeLineScan(bad); !errors.Is(err, ErrBadSpeed) {
		t.Error("zero speed accepted")
	}
}

func TestTwoLineScan(t *testing.T) {
	scan, err := NewTwoLineScan(-0.5, 0.5, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := scan.Position(0); got != geom.V3(-0.5, 0, 0) {
		t.Errorf("start = %v", got)
	}
	// Everything stays in the z = 0 plane.
	n := 200
	labels := map[int]bool{}
	for i := 0; i <= n; i++ {
		tt := time.Duration(float64(i) / float64(n) * float64(scan.Duration()))
		pos := scan.Position(tt)
		if !almostEq(pos.Z, 0, 1e-12) {
			t.Fatalf("left plane: %v", pos)
		}
		labels[scan.SegmentAt(tt)] = true
	}
	if !labels[LineL1] || !labels[LineL2] {
		t.Errorf("labels seen: %v", labels)
	}
	if scan.YSpacing() != 0.2 {
		t.Errorf("YSpacing = %v", scan.YSpacing())
	}
	xMin, xMax := scan.XRange()
	if xMin != -0.5 || xMax != 0.5 {
		t.Errorf("XRange = %v %v", xMin, xMax)
	}
}

func TestTwoLineScanValidation(t *testing.T) {
	if _, err := NewTwoLineScan(1, -1, 0.2, 0.1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewTwoLineScan(-1, 1, 0, 0.1); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := NewTwoLineScan(-1, 1, 0.2, 0); !errors.Is(err, ErrBadSpeed) {
		t.Error("zero speed accepted")
	}
}

func TestPolylinePositionMonotoneArcLength(t *testing.T) {
	p, err := NewPolyline([]geom.Vec3{
		{X: 0}, {X: 1}, {X: 1, Y: 1}, {X: 0, Y: 1}, {},
	}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Arc length travelled between consecutive samples should equal
	// speed × dt everywhere (constant speed property).
	prev := p.Position(0)
	dt := 10 * time.Millisecond
	for tt := dt; tt <= p.Duration(); tt += dt {
		cur := p.Position(tt)
		step := cur.Dist(prev)
		if !almostEq(step, 0.5*dt.Seconds(), 1e-9) {
			t.Fatalf("non-constant speed at %v: step %v", tt, step)
		}
		prev = cur
	}
}
