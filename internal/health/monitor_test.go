package health

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/obs"
)

func TestNewValidatesConfig(t *testing.T) {
	dup := Rule{Name: "r", Signal: SignalResidual, Kind: KindStatic, Threshold: 1}
	if _, err := New(Config{Rules: []Rule{dup, dup}}); err == nil {
		t.Error("duplicate rule names accepted")
	}
	if _, err := New(Config{Rules: []Rule{{Name: "Bad Name", Signal: SignalResidual, Kind: KindStatic, Threshold: 1}}}); err == nil {
		t.Error("invalid rule name accepted")
	}
	if _, err := New(Config{Rules: []Rule{{Name: "r", Signal: SignalDrift, Kind: KindDeviation, Threshold: 1}}}); err == nil {
		t.Error("deviation kind on drift signal accepted")
	}
	cal := testCalibration()
	if _, err := New(Config{Calibrations: []Calibration{cal, cal}}); err == nil {
		t.Error("duplicate calibrations accepted")
	}
	if _, err := New(Config{Calibrations: []Calibration{{Antenna: "A1", Lambda: -1}}}); err == nil {
		t.Error("invalid calibration accepted")
	}
	// Defaults: nil rules means DefaultRules.
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rules()) != len(DefaultRules()) {
		t.Errorf("default rule count = %d, want %d", len(m.Rules()), len(DefaultRules()))
	}
}

func TestMonitorMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_static", Signal: SignalResidual, Kind: KindStatic,
			Threshold: 1, HoldDown: 0, Severity: SevCritical,
		}},
		Calibrations: []Calibration{testCalibration()},
		Registry:     reg,
		FlightDepth:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Registry() != reg {
		t.Error("Registry() does not return the configured registry")
	}
	o := solveAt(1*time.Second, 5)
	o.Trace = []obs.Event{{Kind: obs.KindSpanStart, Span: "solve"}}
	m.ObserveSolve(o) // pending
	o.Time = 2 * time.Second
	m.ObserveSolve(o) // firing

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"lion_health_solves_observed_total 2",
		"lion_health_flight_records_total 2",
		`lion_health_alert_transitions_total{state="pending"} 1`,
		`lion_health_alert_transitions_total{state="firing"} 1`,
		`lion_health_alerts_firing{rule="residual_static"} 1`,
		`lion_health_drift_lambda{antenna="A1"} 0`,
		"lion_health_alerts_active 1",
		"lion_health_flight_traces 2",
		"lion_health_eval_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Resolve: firing gauge returns to zero.
	m.ObserveSolve(solveAt(3*time.Second, 0.1))
	sb.Reset()
	reg.WritePrometheus(&sb)
	text = sb.String()
	for _, want := range []string{
		`lion_health_alerts_firing{rule="residual_static"} 0`,
		`lion_health_alert_transitions_total{state="resolved"} 1`,
		"lion_health_alerts_active 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestAlertsOrdering(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{
			{Name: "residual_static", Signal: SignalResidual, Kind: KindStatic,
				Threshold: 1, HoldDown: 0, Severity: SevWarning},
			{Name: "condition_static", Signal: SignalCondition, Kind: KindStatic,
				Threshold: 100, HoldDown: time.Hour, Severity: SevWarning},
		},
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := solveAt(1*time.Second, 5)
	bad.Condition = 1e6
	m.ObserveSolve(bad) // both pending
	bad.Time = 2 * time.Second
	m.ObserveSolve(bad) // residual fires; condition stays pending (1h hold)
	got := m.Alerts()
	if len(got) != 2 {
		t.Fatalf("Alerts() = %+v", got)
	}
	if got[0].State != StateFiring || got[0].Rule != "residual_static" {
		t.Errorf("Alerts()[0] = %+v, want firing residual_static first", got[0])
	}
	if got[1].State != StatePending || got[1].Rule != "condition_static" {
		t.Errorf("Alerts()[1] = %+v, want pending condition_static", got[1])
	}
}

func TestMonitorSeries(t *testing.T) {
	m, err := New(Config{BaselineWindow: 4, FlightDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		m.ObserveSolve(solveAt(time.Duration(i)*time.Second, float64(i)))
	}
	got := m.Series("T1", SignalResidual)
	want := []float64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
	if m.Series("nope", SignalResidual) != nil {
		t.Error("unknown tag returned a series")
	}
	if m.Series("T1", SignalDrift) != nil {
		t.Error("non-per-tag signal returned a series")
	}
}

func TestMonitorTagEviction(t *testing.T) {
	m, err := New(Config{MaxTags: 4, FlightDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		o := solveAt(time.Duration(i+1)*time.Second, 0.1)
		o.Tag = string(rune('A' + i))
		m.ObserveSolve(o)
	}
	if got := len(m.tags); got != 4 {
		t.Errorf("tag sessions = %d, want bound 4", got)
	}
	if m.Series("A", SignalResidual) != nil {
		t.Error("evicted tag still has baselines")
	}
	if m.Series("J", SignalResidual) == nil {
		t.Error("newest tag missing baselines")
	}
}

func TestDropRateSignal(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{{
			Name: "stream_drops", Signal: SignalDropRate, Kind: KindStatic,
			Threshold: 0.25, HoldDown: 0, Severity: SevWarning,
		}},
		RateAlpha:   0.99, // follow the instantaneous ratio almost exactly
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pos := geom.V3(0, 0, 0)
	// 1 accepted, 9 dropped between solve ticks: drop ratio 0.9.
	m.ObserveSample("A1", 1*time.Second, pos, 0)
	for i := 0; i < 9; i++ {
		m.ObserveDrop(1 * time.Second)
	}
	m.ObserveSolve(solveAt(2*time.Second, 0.1))
	m.ObserveSolve(solveAt(3*time.Second, 0.1))
	a := findAlert(m.Alerts(), "stream_drops", StateFiring)
	if a == nil {
		t.Fatalf("no firing drop-rate alert: %+v", m.Alerts())
	}
	if a.Scope != "stream" {
		t.Errorf("drop alert scope = %q, want stream", a.Scope)
	}
	if a.Value < 0.25 {
		t.Errorf("drop alert value = %v, want > 0.25", a.Value)
	}
}

func TestErrorRateSignal(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{{
			Name: "solve_errors", Signal: SignalErrorRate, Kind: KindStatic,
			Threshold: 0.5, HoldDown: 0, Severity: SevCritical,
		}},
		RateAlpha:   0.5,
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	fail := solveAt(1*time.Second, 0)
	fail.Failed, fail.Err = true, "rank deficient"
	m.ObserveSolve(fail)
	fail.Time = 2 * time.Second
	m.ObserveSolve(fail)
	fail.Time = 3 * time.Second
	m.ObserveSolve(fail)
	if findAlert(m.Alerts(), "solve_errors", StateFiring) == nil {
		t.Fatalf("no firing error-rate alert: %+v", m.Alerts())
	}
	// Recovery: healthy solves pull the EWMA back under threshold.
	for i := 4; i < 12; i++ {
		m.ObserveSolve(solveAt(time.Duration(i)*time.Second, 0.1))
	}
	if findAlert(m.Alerts(), "solve_errors", StateResolved) == nil {
		t.Fatalf("error-rate alert did not resolve: %+v", m.Alerts())
	}
}

func TestDefaultRulesValid(t *testing.T) {
	for _, r := range DefaultRules() {
		if err := r.validate(); err != nil {
			t.Errorf("default rule %q invalid: %v", r.Name, err)
		}
	}
}

func TestDriftLambdaMatchesRangingError(t *testing.T) {
	// Sanity of the λ-fraction convention: a drift of Δφ radians in the
	// phase offset biases ranging by Δd = Δφ·λ/(4π), i.e. DriftLambda·λ.
	driftRad := 0.3
	lambda := 0.328
	wantMetres := driftRad * lambda / (4 * math.Pi)
	gotMetres := (driftRad / (4 * math.Pi)) * lambda
	if math.Abs(wantMetres-gotMetres) > 1e-15 {
		t.Errorf("λ-fraction convention inconsistent: %v vs %v", wantMetres, gotMetres)
	}
}
