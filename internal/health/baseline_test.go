package health

import (
	"math"
	"testing"
)

func TestBaselineWindowStats(t *testing.T) {
	b := newBaseline(4, 0.5)
	for _, v := range []float64{1, 2, 3, 4} {
		b.add(v)
	}
	if got := b.mean(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("mean = %v, want 2.5", got)
	}
	wantStd := math.Sqrt(1.25) // population std of {1,2,3,4}
	if got := b.std(); math.Abs(got-wantStd) > 1e-12 {
		t.Errorf("std = %v, want %v", got, wantStd)
	}
	// Ring eviction: pushing 5 and 6 drops 1 and 2.
	b.add(5)
	b.add(6)
	if got := b.mean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("mean after eviction = %v, want 4.5", got)
	}
}

func TestBaselineZScoreWarmupAndDegenerate(t *testing.T) {
	b := newBaseline(16, 0.1)
	for i := 0; i < 7; i++ {
		b.add(float64(i))
	}
	if _, ok := b.zscore(100, 8); ok {
		t.Error("zscore reported established before minSamples points")
	}
	b.add(7)
	z, ok := b.zscore(b.mean(), 8)
	if !ok || z != 0 {
		t.Errorf("zscore(mean) = %v, %v; want 0, true", z, ok)
	}
	// Constant window: zero spread must disable the z-score, not divide by
	// zero.
	c := newBaseline(8, 0.1)
	for i := 0; i < 8; i++ {
		c.add(3)
	}
	if _, ok := c.zscore(4, 8); ok {
		t.Error("zscore reported established on a zero-spread window")
	}
}

func TestBaselineEWMATracksShift(t *testing.T) {
	b := newBaseline(8, 0.5)
	b.add(0)
	for i := 0; i < 20; i++ {
		b.add(10)
	}
	if math.Abs(b.ewma-10) > 0.01 {
		t.Errorf("ewma = %v, want ~10 after persistent shift", b.ewma)
	}
}
