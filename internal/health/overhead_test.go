package health

import (
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
)

// TestNilMonitorZeroOverhead pins the disabled-monitor contract: feeding a
// nil *Monitor allocates nothing, mirroring the nil-Tracer guarantee.
func TestNilMonitorZeroOverhead(t *testing.T) {
	var m *Monitor
	pos := geom.V3(1, 2, 3)
	o := SolveObservation{Tag: "T1", Time: time.Second, Residual: 0.1}
	allocs := testing.AllocsPerRun(1000, func() {
		m.ObserveSample("A1", time.Second, pos, 1.0)
		m.ObserveDrop(time.Second)
		m.ObserveSolve(o)
		_ = m.WantsTraces()
		_ = m.CriticalFiring()
	})
	if allocs != 0 {
		t.Errorf("nil monitor allocated %v per run, want 0", allocs)
	}
}

func BenchmarkObserveSampleMonitored(b *testing.B) {
	m, err := New(Config{Calibrations: []Calibration{testCalibration()}, FlightDepth: -1})
	if err != nil {
		b.Fatal(err)
	}
	pos := geom.V3(0.5, 0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObserveSample("A1", time.Duration(i), pos, 1.0)
	}
}

func BenchmarkObserveSolveMonitored(b *testing.B) {
	m, err := New(Config{Calibrations: []Calibration{testCalibration()}, FlightDepth: -1})
	if err != nil {
		b.Fatal(err)
	}
	o := SolveObservation{
		Tag: "T1", Window: 64, Residual: 0.01,
		Condition: 10, Iterations: 3, Latency: 100 * time.Microsecond,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Time = time.Duration(i) * time.Millisecond
		m.ObserveSolve(o)
	}
}

func BenchmarkObserveSolveNil(b *testing.B) {
	var m *Monitor
	o := SolveObservation{Tag: "T1", Residual: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ObserveSolve(o)
	}
}
