package health

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/obs"
)

func rec(tag string, seq uint64, t time.Duration) TraceRecord {
	return TraceRecord{
		Tag: tag, Seq: seq, Time: t, Window: 32,
		Events: []obs.Event{{Kind: obs.KindSpanStart, Span: "solve"}},
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(3, 8)
	for i := 0; i < 5; i++ {
		f.Record(rec("T1", uint64(i), time.Duration(i)*time.Second))
	}
	got := f.Tag("T1")
	if len(got) != 3 {
		t.Fatalf("ring holds %d records, want 3", len(got))
	}
	var seqs []uint64
	for _, r := range got {
		seqs = append(seqs, r.Seq)
	}
	if !reflect.DeepEqual(seqs, []uint64{2, 3, 4}) {
		t.Errorf("retained seqs = %v, want oldest-first [2 3 4]", seqs)
	}
	if f.Len() != 3 {
		t.Errorf("Len = %d, want 3", f.Len())
	}
	if f.Tag("missing") != nil {
		t.Error("unknown tag returned records")
	}
}

func TestFlightRecorderTagLRUEviction(t *testing.T) {
	f := NewFlightRecorder(2, 3)
	f.Record(rec("T1", 1, 1*time.Second))
	f.Record(rec("T2", 2, 2*time.Second))
	f.Record(rec("T3", 3, 3*time.Second))
	// T1 gets fresher than T2.
	f.Record(rec("T1", 4, 4*time.Second))
	// A fourth tag evicts the stalest (T2).
	f.Record(rec("T4", 5, 5*time.Second))
	want := []string{"T1", "T3", "T4"}
	if got := f.Tags(); !reflect.DeepEqual(got, want) {
		t.Errorf("Tags = %v, want %v", got, want)
	}
	if f.Tag("T2") != nil {
		t.Error("evicted tag still has records")
	}
}

func TestFlightRecorderMemoryBound(t *testing.T) {
	f := NewFlightRecorder(4, 16)
	for i := 0; i < 500; i++ {
		f.Record(rec(fmt.Sprintf("T%d", i%40), uint64(i), time.Duration(i)*time.Millisecond))
	}
	if got := len(f.Tags()); got != 16 {
		t.Errorf("tag count = %d, want bound 16", got)
	}
	if got := f.Len(); got > 4*16 {
		t.Errorf("Len = %d, exceeds depth×maxTags bound %d", got, 4*16)
	}
}

func TestMonitorFlightIntegration(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_static", Signal: SignalResidual, Kind: KindStatic,
			Threshold: 1, HoldDown: time.Second, Severity: SevWarning,
		}},
		FlightDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.WantsTraces() {
		t.Fatal("WantsTraces false with recorder enabled")
	}
	solve := func(t time.Duration, residual float64, seq uint64) SolveObservation {
		o := solveAt(t, residual)
		o.Seq = seq
		o.Trace = []obs.Event{{Kind: obs.KindSpanStart, Span: "solve"}}
		return o
	}
	m.ObserveSolve(solve(1*time.Second, 0.1, 1))
	m.ObserveSolve(solve(2*time.Second, 5, 2)) // pending
	m.ObserveSolve(solve(3*time.Second, 6, 3)) // fires, evidence snapshot
	f := findAlert(m.Alerts(), "residual_static", StateFiring)
	if f == nil {
		t.Fatalf("no firing alert: %+v", m.Alerts())
	}
	if len(f.Evidence) != 3 {
		t.Fatalf("evidence holds %d traces, want 3", len(f.Evidence))
	}
	// The newest evidence record is the solve that confirmed the alert.
	last := f.Evidence[len(f.Evidence)-1]
	if last.Seq != 3 || len(last.Events) != 1 {
		t.Errorf("confirming evidence = %+v", last)
	}
	// The live recorder keeps rolling past the snapshot.
	m.ObserveSolve(solve(4*time.Second, 0.1, 4))
	if got := m.Flight("T1"); len(got) != 4 {
		t.Errorf("Flight holds %d, want 4", len(got))
	}
	if got := m.FlightTags(); !reflect.DeepEqual(got, []string{"T1"}) {
		t.Errorf("FlightTags = %v", got)
	}
	// Evidence snapshot is unchanged by later records.
	if f.Evidence[len(f.Evidence)-1].Seq != 3 {
		t.Error("evidence mutated after snapshot")
	}
}

func TestMonitorFailedSolveRecordedWithoutTrace(t *testing.T) {
	m, err := New(Config{FlightDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	o := solveAt(1*time.Second, 0)
	o.Failed, o.Err = true, "rank deficient"
	m.ObserveSolve(o)
	got := m.Flight("T1")
	if len(got) != 1 || got[0].Err != "rank deficient" {
		t.Fatalf("failed solve not recorded: %+v", got)
	}
}
