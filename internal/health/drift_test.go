package health

import (
	"math"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// feedDrift streams n synthetic samples with the given true phase offset
// into the estimator: tag positions march along x, phases follow the linear
// model phase = 4πd/λ + offset (mod 2π).
func feedDrift(d *driftEstimator, n int, offset float64) {
	cal := d.cal
	for i := 0; i < n; i++ {
		pos := geom.V3(0.5+0.01*float64(i%100), 0, 0)
		phase := rf.WrapPhase(rf.PhaseOfDistance(cal.Center.Dist(pos), cal.Lambda) + offset)
		d.add(pos, phase)
	}
}

func testCalibration() Calibration {
	return Calibration{
		Antenna: "A1",
		Center:  geom.V3(0, 0, 1.2),
		Offset:  1.3,
		Lambda:  rf.DefaultBand().Wavelength(),
		Window:  64, MinSamples: 16,
	}
}

func TestDriftEstimatorRecoversOffset(t *testing.T) {
	d := newDriftEstimator(testCalibration())
	// Before MinSamples the estimate is invalid.
	feedDrift(d, 15, 1.3)
	if st := d.status(); st.Valid {
		t.Fatalf("estimate valid at %d samples, min 16", st.Samples)
	}
	feedDrift(d, 50, 1.3)
	st := d.status()
	if !st.Valid {
		t.Fatal("estimate invalid after 65 samples")
	}
	if math.Abs(st.Estimated-1.3) > 1e-9 {
		t.Errorf("Estimated = %v, want 1.3", st.Estimated)
	}
	if math.Abs(st.DriftRad) > 1e-9 || st.DriftLambda > 1e-9 {
		t.Errorf("drift of healthy antenna = %v rad (%v lambda)", st.DriftRad, st.DriftLambda)
	}
}

func TestDriftEstimatorDetectsOffsetStep(t *testing.T) {
	d := newDriftEstimator(testCalibration())
	feedDrift(d, 64, 1.3)
	// The offset steps by +0.5 rad; once the window turns over, the
	// estimate follows.
	feedDrift(d, 64, 1.8)
	st := d.status()
	if !st.Valid {
		t.Fatal("estimate invalid")
	}
	if math.Abs(st.DriftRad-0.5) > 1e-9 {
		t.Errorf("DriftRad = %v, want 0.5", st.DriftRad)
	}
	want := 0.5 / (4 * math.Pi)
	if math.Abs(st.DriftLambda-want) > 1e-12 {
		t.Errorf("DriftLambda = %v, want %v", st.DriftLambda, want)
	}
}

func TestDriftEstimatorSignedWrapAround(t *testing.T) {
	// Calibrated offset near 0; true offset just below 2π. The naive
	// difference is ≈ +2π, but the signed wrap must report a small
	// negative drift.
	cal := testCalibration()
	cal.Offset = 0.1
	d := newDriftEstimator(cal)
	feedDrift(d, 64, 2*math.Pi-0.1)
	st := d.status()
	if !st.Valid {
		t.Fatal("estimate invalid")
	}
	if math.Abs(st.DriftRad-(-0.2)) > 1e-9 {
		t.Errorf("DriftRad = %v, want -0.2", st.DriftRad)
	}
}

func TestCalibrationValidate(t *testing.T) {
	good := testCalibration()
	if err := good.validate(); err != nil {
		t.Fatalf("valid calibration rejected: %v", err)
	}
	cases := []Calibration{
		{Center: geom.V3(0, 0, 0), Lambda: 0.3},                          // no antenna
		{Antenna: "A1", Lambda: 0},                                       // zero wavelength
		{Antenna: "A1", Lambda: 0.3, Offset: math.NaN()},                 // NaN offset
		{Antenna: "A1", Lambda: 0.3, Window: -1},                         // negative window
		{Antenna: "A1", Lambda: 0.3, Center: geom.V3(math.Inf(1), 0, 0)}, // bad center
	}
	for i, c := range cases {
		if err := c.validate(); err == nil {
			t.Errorf("case %d: invalid calibration %+v accepted", i, c)
		}
	}
}

func TestMonitorDriftAlertEndToEnd(t *testing.T) {
	cal := testCalibration()
	m, err := New(Config{
		Rules: []Rule{{
			Name: "calibration_drift", Signal: SignalDrift, Kind: KindStatic,
			Threshold: 0.02, HoldDown: 2 * time.Second, Severity: SevCritical,
		}},
		Calibrations: []Calibration{cal},
		FlightDepth:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feed := func(n int, offset float64, base time.Duration) time.Duration {
		t := base
		for i := 0; i < n; i++ {
			pos := geom.V3(0.5+0.01*float64(i%100), 0, 0)
			phase := rf.WrapPhase(rf.PhaseOfDistance(cal.Center.Dist(pos), cal.Lambda) + offset)
			m.ObserveSample(cal.Antenna, t, pos, phase)
			t += 10 * time.Millisecond
		}
		return t
	}
	// Healthy stream, then a solve tick to run the rules.
	now := feed(64, cal.Offset, 0)
	m.ObserveSolve(solveAt(now, 0.1))
	if got := m.Alerts(); len(got) != 0 {
		t.Fatalf("healthy drift raised alerts: %+v", got)
	}
	// Phase-offset step worth ~0.04 λ of ranging error (threshold 0.02 λ).
	step := 0.04 * 4 * math.Pi
	now = feed(64, cal.Offset+step, now)
	m.ObserveSolve(solveAt(now, 0.1))
	a := findAlert(m.Alerts(), "calibration_drift", StatePending)
	if a == nil {
		t.Fatalf("no pending drift alert: %+v", m.Alerts())
	}
	if a.Scope != "antenna:A1" {
		t.Errorf("drift alert scope = %q, want antenna:A1", a.Scope)
	}
	if math.Abs(a.Value-0.04) > 1e-9 {
		t.Errorf("drift alert Value = %v λ, want 0.04", a.Value)
	}
	// Hold-down passes on the logical clock: fires.
	m.ObserveSolve(solveAt(now+3*time.Second, 0.1))
	if findAlert(m.Alerts(), "calibration_drift", StateFiring) == nil {
		t.Fatalf("drift alert did not fire: %+v", m.Alerts())
	}
	if !m.CriticalFiring() {
		t.Error("CriticalFiring false with firing drift alert")
	}
	st := m.Drifts()
	if len(st) != 1 || !st[0].Valid || math.Abs(st[0].DriftLambda-0.04) > 1e-9 {
		t.Errorf("Drifts() = %+v", st)
	}
	// Offset corrected: the window flushes, drift returns under threshold,
	// and the alert resolves after the hysteresis.
	now = feed(64, cal.Offset, now+3*time.Second)
	m.ObserveSolve(solveAt(now, 0.1))
	m.ObserveSolve(solveAt(now+3*time.Second, 0.1))
	if findAlert(m.Alerts(), "calibration_drift", StateResolved) == nil {
		t.Fatalf("drift alert did not resolve: %+v", m.Alerts())
	}
}
