package health

import (
	"sort"
	"sync"
	"time"

	"github.com/rfid-lion/lion/internal/obs"
)

// TraceRecord is one recorded window solve: the identifying metadata plus
// the full solve trace. Records are what the flight recorder rings hold and
// what alert evidence snapshots copy.
type TraceRecord struct {
	Tag    string
	Seq    uint64
	Time   time.Duration
	Window int
	Err    string
	Events []obs.Event
}

// FlightRecorder keeps the last Depth solve traces per tag in fixed-size
// rings, bounded to MaxTags tags (least-recently-written evicted). Total
// memory is therefore bounded by Depth × MaxTags trace buffers regardless
// of stream cardinality or uptime. Safe for concurrent use: alert
// transitions snapshot from it while solves append.
type FlightRecorder struct {
	mu      sync.Mutex
	depth   int
	maxTags int
	tags    map[string]*flightRing
}

type flightRing struct {
	buf     []TraceRecord
	n, next int
	touched time.Duration // stream time of the newest record, for eviction
}

// NewFlightRecorder returns a recorder keeping depth traces for up to
// maxTags tags. Non-positive arguments default to 8 and 64.
func NewFlightRecorder(depth, maxTags int) *FlightRecorder {
	if depth <= 0 {
		depth = 8
	}
	if maxTags <= 0 {
		maxTags = 64
	}
	return &FlightRecorder{depth: depth, maxTags: maxTags, tags: make(map[string]*flightRing)}
}

// Record appends one solve trace to the tag's ring, evicting the oldest
// record when full and the least-recently-written tag when the tag bound is
// reached.
func (f *FlightRecorder) Record(rec TraceRecord) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ring := f.tags[rec.Tag]
	if ring == nil {
		if len(f.tags) >= f.maxTags {
			f.evictLocked()
		}
		ring = &flightRing{buf: make([]TraceRecord, f.depth)}
		f.tags[rec.Tag] = ring
	}
	ring.buf[ring.next] = rec
	ring.next = (ring.next + 1) % len(ring.buf)
	if ring.n < len(ring.buf) {
		ring.n++
	}
	ring.touched = rec.Time
}

// evictLocked drops the tag whose newest record is oldest.
func (f *FlightRecorder) evictLocked() {
	var victim string
	var oldest time.Duration
	first := true
	for tag, ring := range f.tags {
		if first || ring.touched < oldest {
			victim, oldest, first = tag, ring.touched, false
		}
	}
	delete(f.tags, victim)
}

// Tag returns the tag's retained traces, oldest first, or nil.
func (f *FlightRecorder) Tag(tag string) []TraceRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	ring := f.tags[tag]
	if ring == nil || ring.n == 0 {
		return nil
	}
	out := make([]TraceRecord, 0, ring.n)
	start := ring.next - ring.n
	if start < 0 {
		start += len(ring.buf)
	}
	for i := 0; i < ring.n; i++ {
		out = append(out, ring.buf[(start+i)%len(ring.buf)])
	}
	return out
}

// Tags returns the recorded tag ids, sorted.
func (f *FlightRecorder) Tags() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.tags))
	for tag := range f.tags {
		out = append(out, tag)
	}
	sort.Strings(out)
	return out
}

// Len returns the total number of retained traces across all tags.
func (f *FlightRecorder) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	total := 0
	for _, ring := range f.tags {
		total += ring.n
	}
	return total
}
