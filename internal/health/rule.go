package health

import (
	"fmt"
	"regexp"
	"time"
)

// Kind selects how a rule's threshold is interpreted.
type Kind int

const (
	// KindStatic violates when the signal value exceeds Threshold.
	KindStatic Kind = iota
	// KindDeviation violates when the signal's z-score against the scope's
	// rolling baseline exceeds Threshold (in standard deviations, one-sided
	// upward: quality signals only ever degrade by growing).
	KindDeviation
)

// String names the kind for wire output.
func (k Kind) String() string {
	if k == KindDeviation {
		return "deviation"
	}
	return "static"
}

// Severity ranks an alert's urgency.
type Severity int

const (
	// SevWarning flags degradation worth investigating.
	SevWarning Severity = iota
	// SevCritical flags conditions that invalidate estimates; a firing
	// critical rule turns liond's readiness probe unhealthy.
	SevCritical
)

// String names the severity for wire output.
func (s Severity) String() string {
	if s == SevCritical {
		return "critical"
	}
	return "warning"
}

// ruleNameRE bounds rule names: they become metric label values.
var ruleNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// Rule is one declarative health check, evaluated on every window solve for
// the scopes its signal applies to.
type Rule struct {
	// Name identifies the rule in alerts, logs, and the
	// lion_health_alerts_firing{rule=...} gauge. Lowercase [a-z0-9_].
	Name string
	// Signal selects the monitored quantity.
	Signal Signal
	// Kind selects static-threshold or deviation-from-baseline semantics.
	Kind Kind
	// Threshold is the violation limit: a signal value for static rules, a
	// z-score (standard deviations) for deviation rules.
	Threshold float64
	// HoldDown is how long a violation must persist before the pending
	// alert fires (debounce). Zero fires on the first confirmed violation
	// after the pending evaluation, i.e. the second consecutive violating
	// tick.
	HoldDown time.Duration
	// ResolveAfter is how long the signal must stay healthy before a firing
	// alert resolves (hysteresis). Zero means resolve takes HoldDown.
	ResolveAfter time.Duration
	// Severity ranks the alert.
	Severity Severity
}

func (r Rule) validate() error {
	if !ruleNameRE.MatchString(r.Name) {
		return fmt.Errorf("health: rule name %q must match %s", r.Name, ruleNameRE)
	}
	if !knownSignal(r.Signal) {
		return fmt.Errorf("health: rule %q has unknown signal %q", r.Name, r.Signal)
	}
	if r.Threshold <= 0 {
		return fmt.Errorf("health: rule %q threshold %v must be positive", r.Name, r.Threshold)
	}
	if r.HoldDown < 0 || r.ResolveAfter < 0 {
		return fmt.Errorf("health: rule %q has negative duration", r.Name)
	}
	if r.Kind == KindDeviation {
		switch r.Signal {
		case SignalErrorRate, SignalDropRate, SignalDrift:
			return fmt.Errorf("health: rule %q: signal %q supports only static thresholds", r.Name, r.Signal)
		}
	}
	return nil
}

func (r Rule) resolveAfter() time.Duration {
	if r.ResolveAfter > 0 {
		return r.ResolveAfter
	}
	return r.HoldDown
}

// DefaultRules is the stock rule set liond runs with: absolute guards on
// conditioning, solve failures and stream drops, deviation guards on the
// per-tag solve-quality signals, and the calibration-drift rule (inert until
// an antenna calibration is configured). Thresholds follow the repo's
// simulated-testbed scales; production deployments tune them per site.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "ill_conditioned", Signal: SignalCondition, Kind: KindStatic,
			Threshold: 1e8, HoldDown: 2 * time.Second, Severity: SevCritical},
		{Name: "residual_anomaly", Signal: SignalResidual, Kind: KindDeviation,
			Threshold: 8, HoldDown: 2 * time.Second, Severity: SevWarning},
		{Name: "iteration_anomaly", Signal: SignalIterations, Kind: KindDeviation,
			Threshold: 8, HoldDown: 2 * time.Second, Severity: SevWarning},
		{Name: "latency_anomaly", Signal: SignalLatency, Kind: KindDeviation,
			Threshold: 10, HoldDown: 5 * time.Second, Severity: SevWarning},
		{Name: "solve_errors", Signal: SignalErrorRate, Kind: KindStatic,
			Threshold: 0.5, HoldDown: 2 * time.Second, Severity: SevCritical},
		{Name: "stream_drops", Signal: SignalDropRate, Kind: KindStatic,
			Threshold: 0.25, HoldDown: 5 * time.Second, Severity: SevWarning},
		{Name: "calibration_drift", Signal: SignalDrift, Kind: KindStatic,
			Threshold: 0.02, HoldDown: 2 * time.Second, Severity: SevCritical},
	}
}
