package health

import "math"

// baseline maintains a rolling picture of one signal for one scope: an EWMA
// (the smoothed level static rules and dashboards read) plus a fixed-size
// window with O(1) running sums, from which deviation rules take z-scores.
// A persistent shift is absorbed by the window over time — baselines define
// "normal" as the recent past, so deviation alerts catch the transition,
// not the steady state; pair them with static rules for absolute limits.
type baseline struct {
	alpha float64
	ewma  float64
	seen  uint64

	buf        []float64
	n, next    int
	sum, sumsq float64
}

func newBaseline(window int, alpha float64) *baseline {
	return &baseline{alpha: alpha, buf: make([]float64, window)}
}

// add records one observation.
func (b *baseline) add(v float64) {
	if b.seen == 0 {
		b.ewma = v
	} else {
		b.ewma += b.alpha * (v - b.ewma)
	}
	b.seen++
	if old := b.buf[b.next]; b.n == len(b.buf) {
		b.sum -= old
		b.sumsq -= old * old
	} else {
		b.n++
	}
	b.buf[b.next] = v
	b.next = (b.next + 1) % len(b.buf)
	b.sum += v
	b.sumsq += v * v
}

// mean returns the mean of the retained window, or 0 when empty.
func (b *baseline) mean() float64 {
	if b.n == 0 {
		return 0
	}
	return b.sum / float64(b.n)
}

// std returns the population standard deviation of the retained window.
func (b *baseline) std() float64 {
	if b.n == 0 {
		return 0
	}
	m := b.mean()
	// Running-sum cancellation can push the variance a hair below zero.
	v := b.sumsq/float64(b.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// zscore returns how many window standard deviations v sits from the window
// mean. ok is false while the window is still warming up (fewer than
// minSamples points) or when the window is degenerate (zero spread), so a
// deviation rule cannot fire off an unestablished baseline.
func (b *baseline) zscore(v float64, minSamples int) (z float64, ok bool) {
	if b.n < minSamples {
		return 0, false
	}
	sd := b.std()
	if sd == 0 {
		return 0, false
	}
	return (v - b.mean()) / sd, true
}
