// Package health closes the observability loop: it watches the per-solve
// signals the pipeline already emits (residual norm, condition estimate,
// IRLS iteration counts, solve latency, stream drop rate) and turns them
// into actionable alerts instead of silently degrading estimates.
//
// The paper's central warning is that an uncalibrated phase offset corrupts
// every downstream estimate without any visible failure (Eq. 17). The
// Monitor makes that Achilles' heel a monitored quantity: a drift detector
// re-estimates each antenna's phase offset over a sliding window of streamed
// samples and alerts when it wanders from the calibrated value by more than
// a configured fraction of the wavelength.
//
// Three pieces compose:
//
//   - rolling quality baselines (EWMA + windowed z-score) per tag, so
//     deviation rules adapt to each deployment's own normal;
//   - a declarative rule set (static thresholds and deviation-from-baseline)
//     evaluated on every window solve, driving a pending → firing → resolved
//     alert state machine with hold-down and resolve hysteresis;
//   - a bounded flight recorder that keeps the last solve traces per tag and
//     snapshots them onto every alert as it fires, so an alert always
//     carries the evidence that triggered it.
//
// The nil *Monitor is the disabled state: every method is a no-op costing
// one nil check and zero allocations, mirroring the nil *obs.Tracer
// contract, so the solve and ingest hot paths call through unconditionally.
package health
