package health

import (
	"math"
	"testing"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// TestDriftSumsExactAfterLongRun regresses the unbounded floating-point
// error of the running circular-mean sums: each window slide used to leak
// one rounding error into sumSin/sumCos forever, a random walk that over
// ≥10⁷ adds drifts the stored sums away from the true window sums. The fix
// resummates exactly from the ring once per full rotation, so after any
// multiple of the window size the stored sums must be bit-identical to a
// fresh summation of the ring contents.
func TestDriftSumsExactAfterLongRun(t *testing.T) {
	cal := testCalibration()
	cal.Window = 256
	d := newDriftEstimator(cal)

	// A deterministic phase sequence with enough variation that the
	// running add/subtract rounding errors cannot cancel by accident.
	const rounds = 39063 // 39063 * 256 = 10,000,128 adds ≥ 1e7
	x := 0.37
	for i := 0; i < rounds*cal.Window; i++ {
		x = math.Mod(x*1.6180339887498949+0.1234567, 2*math.Pi)
		pos := geom.V3(0.5+0.001*float64(i%977), 0.1, 0)
		d.add(pos, x)
	}
	if d.next != 0 || d.n != cal.Window {
		t.Fatalf("ring position after run: next=%d n=%d, want a full rotation boundary", d.next, d.n)
	}

	var wantSin, wantCos float64
	for i := 0; i < d.n; i++ {
		wantSin += d.sin[i]
		wantCos += d.cos[i]
	}
	if math.Float64bits(d.sumSin) != math.Float64bits(wantSin) ||
		math.Float64bits(d.sumCos) != math.Float64bits(wantCos) {
		t.Errorf("running sums drifted after %d adds: sumSin=%v want %v (Δ=%g), sumCos=%v want %v (Δ=%g)",
			rounds*cal.Window, d.sumSin, wantSin, d.sumSin-wantSin,
			d.sumCos, wantCos, d.sumCos-wantCos)
	}

	// The estimate itself must still be a sane circular mean.
	if st := d.status(); !st.Valid {
		t.Error("long-run estimator reports invalid status")
	}
}

// TestDriftValidityGuardAntipodal regresses the brittle exact-equality
// validity guard: a window of antipodal offset measurements cancels to a
// resultant of ~1e-16 — not exactly zero — and the old `== 0` check let
// atan2 turn that remainder into a confident garbage estimate. The guard
// must treat any resultant below the magnitude floor as invalid.
func TestDriftValidityGuardAntipodal(t *testing.T) {
	cal := testCalibration()
	cal.Window = 32
	cal.MinSamples = 32
	d := newDriftEstimator(cal)

	// Alternate instantaneous offsets θ and θ+π: unit vectors cancel
	// pairwise up to rounding.
	pos := geom.V3(0.5, 0, 0)
	base := rf.PhaseOfDistance(cal.Center.Dist(pos), cal.Lambda)
	for i := 0; i < cal.Window; i++ {
		theta := 0.7
		if i%2 == 1 {
			theta += math.Pi
		}
		d.add(pos, base+theta)
	}
	if res := math.Hypot(d.sumSin, d.sumCos); res >= minMeanResultant*float64(d.n) {
		t.Fatalf("antipodal window resultant %g not below guard %g — test setup broken",
			res, minMeanResultant*float64(d.n))
	}
	if st := d.status(); st.Valid {
		t.Errorf("antipodal window produced a Valid estimate: %+v", st)
	}

	// A concentrated window must still validate.
	feedDrift(d, cal.Window, 1.3)
	if st := d.status(); !st.Valid {
		t.Errorf("concentrated window invalid: %+v", st)
	}
}

func TestSwapCalibrationResetsEstimator(t *testing.T) {
	cal := testCalibration()
	m, err := New(Config{Calibrations: []Calibration{cal}, FlightDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Drifted stream against the original calibration.
	step := 0.5
	tnow := time.Duration(0)
	for i := 0; i < 64; i++ {
		pos := geom.V3(0.5+0.01*float64(i%100), 0, 0)
		phase := rf.WrapPhase(rf.PhaseOfDistance(cal.Center.Dist(pos), cal.Lambda) + cal.Offset + step)
		m.ObserveSample(cal.Antenna, tnow, pos, phase)
		tnow += 10 * time.Millisecond
	}
	ds := m.Drifts()
	if len(ds) != 1 || !ds[0].Valid || math.Abs(ds[0].DriftRad-step) > 1e-9 {
		t.Fatalf("pre-swap drift = %+v, want DriftRad %v", ds, step)
	}

	// Swap to the corrected offset: window resets, so the estimate is
	// invalid until post-swap samples refill it, then reads zero drift.
	swapped := cal
	swapped.Offset = rf.WrapPhase(cal.Offset + step)
	if err := m.SwapCalibration(swapped); err != nil {
		t.Fatal(err)
	}
	ds = m.Drifts()
	if len(ds) != 1 || ds[0].Valid || ds[0].Samples != 0 {
		t.Fatalf("post-swap drift not reset: %+v", ds)
	}
	if got, ok := m.Calibration(cal.Antenna); !ok || got.Offset != swapped.Offset {
		t.Fatalf("Calibration() = %+v, %v; want swapped offset %v", got, ok, swapped.Offset)
	}
	for i := 0; i < 64; i++ {
		pos := geom.V3(0.5+0.01*float64(i%100), 0, 0)
		phase := rf.WrapPhase(rf.PhaseOfDistance(cal.Center.Dist(pos), cal.Lambda) + cal.Offset + step)
		m.ObserveSample(cal.Antenna, tnow, pos, phase)
		tnow += 10 * time.Millisecond
	}
	ds = m.Drifts()
	if len(ds) != 1 || !ds[0].Valid || math.Abs(ds[0].DriftRad) > 1e-9 {
		t.Fatalf("post-swap drift under corrected profile = %+v, want ~0", ds)
	}

	// Guard rails: unknown antennas, invalid calibrations, nil monitors.
	unknown := cal
	unknown.Antenna = "A9"
	if err := m.SwapCalibration(unknown); err == nil {
		t.Error("swap for unregistered antenna accepted")
	}
	bad := cal
	bad.Lambda = 0
	if err := m.SwapCalibration(bad); err == nil {
		t.Error("invalid calibration accepted")
	}
	var nilMon *Monitor
	if err := nilMon.SwapCalibration(cal); err == nil {
		t.Error("nil monitor swap accepted")
	}
}

func TestOnTransitionHook(t *testing.T) {
	var got []Alert
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_static", Signal: SignalResidual, Kind: KindStatic,
			Threshold: 1.0, HoldDown: 2 * time.Second, ResolveAfter: time.Second,
			Severity: SevCritical,
		}},
		FlightDepth:  -1,
		OnTransition: func(a Alert) { got = append(got, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.ObserveSolve(solveAt(time.Second, 5)) // violating: pending
	m.ObserveSolve(solveAt(4*time.Second, 5))
	m.ObserveSolve(solveAt(5*time.Second, 0.1))
	m.ObserveSolve(solveAt(7*time.Second, 0.1)) // healthy past hysteresis: resolved

	want := []State{StatePending, StateFiring, StateResolved}
	if len(got) != len(want) {
		t.Fatalf("hook saw %d transitions (%+v), want %d", len(got), got, len(want))
	}
	for i, st := range want {
		if got[i].State != st || got[i].Rule != "residual_static" {
			t.Errorf("transition %d = %v/%s, want %v", i, got[i].Rule, got[i].State, st)
		}
	}
	// The firing copy must carry the evaluated value.
	if got[1].Value != 5 {
		t.Errorf("firing hook Value = %v, want 5", got[1].Value)
	}
}
