package health

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/obs"
)

// Config parameterises a Monitor.
type Config struct {
	// Rules is the declarative rule set; nil means DefaultRules(). Rule
	// names must be unique.
	Rules []Rule
	// Calibrations enables the drift detector for the listed antennas.
	// Samples reported for antennas not listed here are counted for drop
	// accounting but take no part in drift estimation.
	Calibrations []Calibration
	// BaselineWindow is the per-signal rolling window deviation rules take
	// z-scores over; zero defaults to 128.
	BaselineWindow int
	// BaselineAlpha is the EWMA smoothing factor; zero defaults to 0.05.
	BaselineAlpha float64
	// MinBaseline gates deviation rules until a scope's window holds this
	// many points; zero defaults to 16.
	MinBaseline int
	// RateAlpha smooths the global error- and drop-rate signals; zero
	// defaults to 0.2.
	RateAlpha float64
	// MaxTags bounds the per-tag baseline sessions (least-recently-observed
	// evicted); zero defaults to 256.
	MaxTags int
	// FlightDepth is the per-tag flight-recorder ring size; zero defaults
	// to 8, negative disables the recorder entirely.
	FlightDepth int
	// FlightTags bounds the flight recorder's tag count; zero defaults
	// to 64.
	FlightTags int
	// ResolvedHistory bounds the recently-resolved alert list; zero
	// defaults to 32.
	ResolvedHistory int
	// Registry receives the monitor's lion_health_* metrics. Nil means a
	// private registry.
	Registry *obs.Registry
	// Logger, when non-nil, gets one structured line per alert transition.
	Logger *obs.Logger
	// OnTransition, when non-nil, is invoked with a copy of the alert each
	// time it enters a new state (pending, firing, resolved; a pending
	// alert that heals is dropped silently). Callbacks run on the observing
	// goroutine after the monitor's lock is released, in transition order —
	// they may call back into the monitor but must not block for long, as
	// they hold up the solve pipeline's observation hook. This is the
	// subscription point for closed-loop consumers such as the
	// recalibration controller.
	OnTransition func(Alert)
}

func (c *Config) applyDefaults() {
	if c.BaselineWindow <= 0 {
		c.BaselineWindow = 128
	}
	if c.BaselineAlpha <= 0 {
		c.BaselineAlpha = 0.05
	}
	if c.MinBaseline <= 0 {
		c.MinBaseline = 16
	}
	if c.RateAlpha <= 0 {
		c.RateAlpha = 0.2
	}
	if c.MaxTags <= 0 {
		c.MaxTags = 256
	}
	if c.FlightDepth == 0 {
		c.FlightDepth = 8
	}
	if c.FlightTags <= 0 {
		c.FlightTags = 64
	}
	if c.ResolvedHistory <= 0 {
		c.ResolvedHistory = 32
	}
}

// rate is an EWMA of a [0, 1] indicator stream.
type rate struct {
	alpha float64
	v     float64
	seen  bool
}

func (r *rate) add(x float64) {
	if !r.seen {
		r.v, r.seen = x, true
		return
	}
	r.v += r.alpha * (x - r.v)
}

// tagState is one tag's rolling baselines.
type tagState struct {
	baselines map[Signal]*baseline
	touched   time.Duration
}

// perTagSignals are the signals evaluated against a tag's own baseline.
var perTagSignals = [...]Signal{SignalResidual, SignalCondition, SignalIterations, SignalLatency}

// evalBuckets size the evaluation-latency histogram: a full rule pass is
// microseconds, far below solve latency.
var evalBuckets = []float64{1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 1e-3, 1e-2}

// Monitor consumes the pipeline's solve and ingest signals and maintains
// baselines, drift estimates, alerts, and the flight recorder. The nil
// Monitor is the disabled state: every method is a nil-check no-op.
type Monitor struct {
	mu  sync.Mutex
	cfg Config

	rules  []Rule
	tags   map[string]*tagState
	drift  map[string]*driftEstimator
	order  []string // calibration antenna ids, registration order
	active map[alertKey]*alertState
	// resolved holds recently resolved alerts, oldest first.
	resolved []Alert

	errRate                   rate
	dropRate                  rate
	accepted, dropped         uint64
	lastAccepted, lastDropped uint64

	// now is the logical clock: the high-water mark of observed stream
	// timestamps. Alert hold-down and resolve hysteresis are measured on
	// it, which keeps transitions deterministic under accelerated replay.
	now time.Duration

	// hookQueue collects state-entry alert copies during a locked
	// evaluation pass; ObserveSolve drains it to cfg.OnTransition after
	// unlocking so callbacks never run under the monitor mutex.
	hookQueue []Alert

	flight *FlightRecorder

	reg           *obs.Registry
	evalSeconds   *obs.Histogram
	observed      *obs.Counter
	flightRecords *obs.Counter
	transPending  *obs.Counter
	transFiring   *obs.Counter
	transResolved *obs.Counter
	transCanceled *obs.Counter
	firingGauges  map[string]*obs.Gauge // per rule name
	driftGauges   map[string]*obs.Gauge // per antenna id
}

// New validates the configuration and returns a ready monitor.
func New(cfg Config) (*Monitor, error) {
	cfg.applyDefaults()
	rules := cfg.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	seen := map[string]bool{}
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return nil, err
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("health: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Monitor{
		cfg:      cfg,
		rules:    rules,
		tags:     make(map[string]*tagState),
		drift:    make(map[string]*driftEstimator),
		active:   make(map[alertKey]*alertState),
		errRate:  rate{alpha: cfg.RateAlpha},
		dropRate: rate{alpha: cfg.RateAlpha},

		reg: reg,
		evalSeconds: reg.Histogram("lion_health_eval_seconds",
			"Wall time of one health rule evaluation pass.", evalBuckets),
		observed: reg.Counter("lion_health_solves_observed_total",
			"Window solves fed into the health monitor."),
		flightRecords: reg.Counter("lion_health_flight_records_total",
			"Solve traces recorded by the flight recorder."),
		firingGauges: make(map[string]*obs.Gauge),
		driftGauges:  make(map[string]*obs.Gauge),
	}
	if cfg.FlightDepth > 0 {
		m.flight = NewFlightRecorder(cfg.FlightDepth, cfg.FlightTags)
	}
	trans := reg.CounterVec("lion_health_alert_transitions_total",
		"Alert state transitions, by entered state (cancelled = pending healed).", "state")
	m.transPending = trans.With("pending")
	m.transFiring = trans.With("firing")
	m.transResolved = trans.With("resolved")
	m.transCanceled = trans.With("cancelled")
	firing := reg.GaugeVec("lion_health_alerts_firing",
		"Alerts currently firing, by rule.", "rule")
	for _, r := range rules {
		// metriclint:bounded rule names come from the validated static rule set
		m.firingGauges[r.Name] = firing.With(r.Name)
	}
	driftGauge := reg.GaugeVec("lion_health_drift_lambda",
		"Signed phase-offset drift per antenna, as a fraction of the wavelength.", "antenna")
	seenAnt := map[string]bool{}
	for _, cal := range cfg.Calibrations {
		if err := cal.validate(); err != nil {
			return nil, err
		}
		if seenAnt[cal.Antenna] {
			return nil, fmt.Errorf("health: duplicate calibration for antenna %q", cal.Antenna)
		}
		seenAnt[cal.Antenna] = true
		m.drift[cal.Antenna] = newDriftEstimator(cal)
		m.order = append(m.order, cal.Antenna)
		// metriclint:bounded antenna ids come from the configured calibration set
		m.driftGauges[cal.Antenna] = driftGauge.With(cal.Antenna)
	}
	reg.GaugeFunc("lion_health_alerts_active", "Active (pending or firing) alerts.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.active))
	})
	reg.GaugeFunc("lion_health_flight_traces", "Solve traces retained by the flight recorder.", func() float64 {
		if m.flight == nil {
			return 0
		}
		return float64(m.flight.Len())
	})
	return m, nil
}

// Registry returns the metrics registry backing the monitor's metrics.
func (m *Monitor) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// WantsTraces reports whether solve observations should carry tracer events
// (the flight recorder is enabled). Nil-safe.
func (m *Monitor) WantsTraces() bool {
	return m != nil && m.flight != nil
}

// Rules returns a copy of the monitor's rule set.
func (m *Monitor) Rules() []Rule {
	if m == nil {
		return nil
	}
	out := make([]Rule, len(m.rules))
	copy(out, m.rules)
	return out
}

// advanceLocked moves the logical clock forward, never backward.
func (m *Monitor) advanceLocked(t time.Duration) {
	if t > m.now {
		m.now = t
	}
}

// ObserveSample records one accepted ingest sample: drop-rate accounting
// plus the antenna's drift estimator (O(1), one Sincos). Called on the
// ingest hot path; a nil monitor costs one nil check.
func (m *Monitor) ObserveSample(antenna string, t time.Duration, pos geom.Vec3, phase float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.accepted++
	m.advanceLocked(t)
	if d := m.drift[antenna]; d != nil {
		d.add(pos, phase)
	}
	m.mu.Unlock()
}

// ObserveDrop records one dropped sample (overflow or age eviction).
func (m *Monitor) ObserveDrop(t time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.dropped++
	m.advanceLocked(t)
	m.mu.Unlock()
}

// ObserveSolve feeds one window solve through the rule set: it records the
// trace into the flight recorder, updates the scope baselines and global
// rates, and advances every matching alert state machine.
func (m *Monitor) ObserveSolve(o SolveObservation) {
	if m == nil {
		return
	}
	begin := time.Now()
	m.observed.Inc()
	m.mu.Lock()
	m.advanceLocked(o.Time)
	now := m.now

	// Record the trace first so a firing alert's evidence includes the
	// solve that confirmed it.
	if m.flight != nil && (len(o.Trace) > 0 || o.Failed) {
		m.flight.Record(TraceRecord{
			Tag: o.Tag, Seq: o.Seq, Time: o.Time, Window: o.Window,
			Err: o.Err, Events: o.Trace,
		})
		m.flightRecords.Inc()
	}

	if !o.Failed {
		ts := m.tagStateLocked(o.Tag, now)
		scope := "tag:" + o.Tag
		for _, r := range m.rules {
			v, ok := perTagValue(r.Signal, o)
			if !ok {
				continue
			}
			switch r.Kind {
			case KindStatic:
				m.transitionLocked(r, scope, o.Tag, v > r.Threshold, v, v, 0, now)
			case KindDeviation:
				b := ts.baselines[r.Signal]
				z, established := b.zscore(v, m.cfg.MinBaseline)
				m.transitionLocked(r, scope, o.Tag, established && z > r.Threshold, z, v, b.mean(), now)
			}
		}
		// Baselines absorb the value only after every rule evaluated
		// against the pre-observation window.
		for _, sig := range perTagSignals {
			v, _ := perTagValue(sig, o)
			ts.baselines[sig].add(v)
		}
	}

	m.errRate.add(bool01(o.Failed))
	for _, r := range m.rules {
		if r.Signal == SignalErrorRate {
			m.transitionLocked(r, "stream", o.Tag, m.errRate.v > r.Threshold, m.errRate.v, m.errRate.v, 0, now)
		}
	}

	if dA, dD := m.accepted-m.lastAccepted, m.dropped-m.lastDropped; dA+dD > 0 {
		m.dropRate.add(float64(dD) / float64(dA+dD))
		m.lastAccepted, m.lastDropped = m.accepted, m.dropped
	}
	for _, r := range m.rules {
		if r.Signal == SignalDropRate {
			m.transitionLocked(r, "stream", o.Tag, m.dropRate.v > r.Threshold, m.dropRate.v, m.dropRate.v, 0, now)
		}
	}

	for _, ant := range m.order {
		st := m.drift[ant].status()
		gauge := 0.0
		if st.Valid {
			gauge = st.DriftRad / (4 * math.Pi)
		}
		m.driftGauges[ant].Set(gauge)
		for _, r := range m.rules {
			if r.Signal == SignalDrift {
				m.transitionLocked(r, "antenna:"+ant, o.Tag,
					st.Valid && st.DriftLambda > r.Threshold, st.DriftLambda, st.DriftRad, st.Calibrated, now)
			}
		}
	}
	hooks := m.hookQueue
	m.hookQueue = nil
	fn := m.cfg.OnTransition
	m.mu.Unlock()
	for _, a := range hooks {
		fn(a)
	}
	m.evalSeconds.Observe(time.Since(begin).Seconds())
}

// SetOnTransition installs (or replaces) the transition subscriber after
// construction — the wiring hook for consumers built after the monitor,
// such as the recalibration controller. Transitions evaluated before the
// subscriber is installed are not replayed.
func (m *Monitor) SetOnTransition(fn func(Alert)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cfg.OnTransition = fn
	m.mu.Unlock()
}

// perTagValue extracts a per-solve signal from the observation.
func perTagValue(sig Signal, o SolveObservation) (float64, bool) {
	switch sig {
	case SignalResidual:
		return o.Residual, true
	case SignalCondition:
		return o.Condition, true
	case SignalIterations:
		return float64(o.Iterations), true
	case SignalLatency:
		return o.Latency.Seconds(), true
	}
	return 0, false
}

func bool01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// tagStateLocked returns the tag's baseline set, creating it (and evicting
// the least-recently-observed tag past the bound) on first sight.
func (m *Monitor) tagStateLocked(tag string, now time.Duration) *tagState {
	ts := m.tags[tag]
	if ts == nil {
		if len(m.tags) >= m.cfg.MaxTags {
			var victim string
			var oldest time.Duration
			first := true
			for id, s := range m.tags {
				if first || s.touched < oldest {
					victim, oldest, first = id, s.touched, false
				}
			}
			delete(m.tags, victim)
		}
		ts = &tagState{baselines: make(map[Signal]*baseline, len(perTagSignals))}
		for _, sig := range perTagSignals {
			ts.baselines[sig] = newBaseline(m.cfg.BaselineWindow, m.cfg.BaselineAlpha)
		}
		m.tags[tag] = ts
	}
	ts.touched = now
	return ts
}

// transitionLocked advances one (rule, scope) alert state machine by one
// evaluation tick.
func (m *Monitor) transitionLocked(r Rule, scope, evidenceTag string, violating bool, value, raw, base float64, now time.Duration) {
	key := alertKey{rule: r.Name, scope: scope}
	st := m.active[key]
	if violating {
		if st == nil {
			st = &alertState{Alert: Alert{
				Rule: r.Name, Signal: r.Signal, Severity: r.Severity, Scope: scope,
				State: StatePending, Threshold: r.Threshold, StartedAt: now,
			}}
			m.active[key] = st
			m.transPending.Inc()
			m.cfg.Logger.Info("alert pending", "rule", r.Name, "scope", scope, "value", value)
			st.Value, st.RawValue, st.Baseline, st.UpdatedAt = value, raw, base, now
			m.enqueueHookLocked(st.Alert)
		}
		st.Value, st.RawValue, st.Baseline, st.UpdatedAt = value, raw, base, now
		st.healthy = false
		if st.State == StatePending && now-st.StartedAt >= r.HoldDown {
			st.State = StateFiring
			st.FiredAt = now
			if m.flight != nil {
				st.Evidence = m.flight.Tag(evidenceTag)
			}
			m.firingGauges[r.Name].Add(1)
			m.transFiring.Inc()
			m.cfg.Logger.Warn("alert firing",
				"rule", r.Name, "scope", scope, "severity", r.Severity.String(),
				"value", value, "threshold", r.Threshold)
			m.enqueueHookLocked(st.Alert)
		}
		return
	}
	if st == nil {
		return
	}
	st.UpdatedAt = now
	switch st.State {
	case StatePending:
		delete(m.active, key)
		m.transCanceled.Inc()
	case StateFiring:
		if !st.healthy {
			st.healthy, st.healthySince = true, now
		}
		if now-st.healthySince >= r.resolveAfter() {
			st.State = StateResolved
			st.ResolvedAt = now
			delete(m.active, key)
			m.resolved = append(m.resolved, st.Alert)
			if over := len(m.resolved) - m.cfg.ResolvedHistory; over > 0 {
				m.resolved = append(m.resolved[:0], m.resolved[over:]...)
			}
			m.firingGauges[r.Name].Add(-1)
			m.transResolved.Inc()
			m.cfg.Logger.Info("alert resolved", "rule", r.Name, "scope", scope)
			m.enqueueHookLocked(st.Alert)
		}
	}
}

// enqueueHookLocked queues an alert copy for post-unlock delivery to the
// OnTransition subscriber.
func (m *Monitor) enqueueHookLocked(a Alert) {
	if m.cfg.OnTransition != nil {
		m.hookQueue = append(m.hookQueue, a)
	}
}

// SwapCalibration atomically replaces the recorded calibration of an
// already-registered antenna and resets its drift estimator: the sliding
// window is emptied so the re-estimate restarts from post-swap samples
// only, never mixing offsets measured under the old profile with the new
// reference. A firing calibration_drift alert for the antenna therefore
// heals on its own once the corrected profile's samples fill the window.
// Only antennas registered at construction can be swapped — the gauge and
// alert-scope cardinality stays bounded by configuration.
func (m *Monitor) SwapCalibration(cal Calibration) error {
	if m == nil {
		return fmt.Errorf("health: nil monitor cannot swap calibrations")
	}
	if err := cal.validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.drift[cal.Antenna]; !ok {
		return fmt.Errorf("health: no calibration registered for antenna %q", cal.Antenna)
	}
	m.drift[cal.Antenna] = newDriftEstimator(cal)
	return nil
}

// Calibration returns the current recorded calibration for an antenna.
func (m *Monitor) Calibration(antenna string) (Calibration, bool) {
	if m == nil {
		return Calibration{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.drift[antenna]
	if d == nil {
		return Calibration{}, false
	}
	return d.cal, true
}

// Alerts returns every active alert plus the recently-resolved history:
// firing first, then pending (each newest first), then resolved newest
// first. The returned alerts are copies; Evidence slices are shared but
// immutable.
func (m *Monitor) Alerts() []Alert {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Alert, 0, len(m.active)+len(m.resolved))
	for _, st := range m.active {
		out = append(out, st.Alert)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State == StateFiring
		}
		if out[i].StartedAt != out[j].StartedAt {
			return out[i].StartedAt > out[j].StartedAt
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].Scope < out[j].Scope
	})
	for i := len(m.resolved) - 1; i >= 0; i-- {
		out = append(out, m.resolved[i])
	}
	return out
}

// CriticalFiring reports whether any critical-severity alert is firing —
// the readiness signal. Nil-safe: a nil monitor is always ready.
func (m *Monitor) CriticalFiring() bool {
	if m == nil {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, st := range m.active {
		if st.State == StateFiring && st.Severity == SevCritical {
			return true
		}
	}
	return false
}

// Drifts returns the drift status of every calibrated antenna, in
// configuration order.
func (m *Monitor) Drifts() []DriftStatus {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]DriftStatus, 0, len(m.order))
	for _, ant := range m.order {
		out = append(out, m.drift[ant].status())
	}
	return out
}

// Series returns a copy of the tag's rolling baseline window for one
// per-solve signal, oldest first — the raw series dashboards render as
// sparklines. Nil when the tag or signal is unknown.
func (m *Monitor) Series(tag string, sig Signal) []float64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ts := m.tags[tag]
	if ts == nil {
		return nil
	}
	b := ts.baselines[sig]
	if b == nil || b.n == 0 {
		return nil
	}
	out := make([]float64, 0, b.n)
	start := b.next - b.n
	if start < 0 {
		start += len(b.buf)
	}
	for i := 0; i < b.n; i++ {
		out = append(out, b.buf[(start+i)%len(b.buf)])
	}
	return out
}

// Flight returns the tag's retained solve traces, oldest first. Nil-safe.
func (m *Monitor) Flight(tag string) []TraceRecord {
	if m == nil || m.flight == nil {
		return nil
	}
	return m.flight.Tag(tag)
}

// FlightTags returns the tags with retained traces, sorted. Nil-safe.
func (m *Monitor) FlightTags() []string {
	if m == nil || m.flight == nil {
		return nil
	}
	return m.flight.Tags()
}
