package health

import (
	"time"

	"github.com/rfid-lion/lion/internal/obs"
)

// Signal names one monitored quantity. Per-solve signals (residual,
// condition, iterations, latency) are evaluated against the observing tag's
// own baseline; stream signals (error rate, drop rate) are global; drift is
// per antenna.
type Signal string

const (
	// SignalResidual is Solution.FinalResidual: the 2-norm of the residual
	// vector at the final IRWLS estimate.
	SignalResidual Signal = "residual_norm"
	// SignalCondition is Solution.ConditionEstimate: the solver's lower
	// bound on the unweighted system's condition number.
	SignalCondition Signal = "condition_estimate"
	// SignalIterations is the IRWLS iteration count of the solve.
	SignalIterations Signal = "irls_iterations"
	// SignalLatency is the wall time of the window solve, in seconds.
	SignalLatency Signal = "solve_latency_seconds"
	// SignalErrorRate is the EWMA fraction of window solves returning an
	// error, across all tags.
	SignalErrorRate Signal = "solve_error_rate"
	// SignalDropRate is the EWMA fraction of stream samples dropped
	// (overflow or age eviction) among all ingest events since the previous
	// evaluation tick.
	SignalDropRate Signal = "drop_rate"
	// SignalDrift is the calibration drift: |re-estimated − calibrated phase
	// offset| expressed as a fraction of the wavelength (Δφ/4π, the
	// equivalent ranging error over λ). Evaluated per calibrated antenna.
	SignalDrift Signal = "drift_lambda"
)

// knownSignal reports whether s is one of the Signal constants.
func knownSignal(s Signal) bool {
	switch s {
	case SignalResidual, SignalCondition, SignalIterations, SignalLatency,
		SignalErrorRate, SignalDropRate, SignalDrift:
		return true
	}
	return false
}

// SolveObservation carries one window solve's quality signals into the
// monitor. Time is the stream timestamp of the window's last sample — the
// monitor's logical clock, which keeps alert timing deterministic under
// accelerated replay.
type SolveObservation struct {
	Tag     string
	Antenna string
	Time    time.Duration
	Window  int
	Seq     uint64

	Residual   float64
	Condition  float64
	Iterations int
	Latency    time.Duration

	// Failed marks a solve that returned an error; the solution-derived
	// signals above are not meaningful and only the error-rate signal is
	// updated.
	Failed bool
	// Err is the failed solve's error text, recorded with the flight trace.
	Err string

	// Trace is the solve's tracer event log, recorded into the flight
	// recorder when present.
	Trace []obs.Event
}
