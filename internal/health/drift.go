package health

import (
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// Calibration is the recorded phase calibration of one antenna: the
// estimated phase center and the constant offset Δθ = θ_T + θ_R (Eq. 17)
// measured at calibration time. The drift detector re-estimates Δθ
// continuously from streamed samples against this record.
type Calibration struct {
	// Antenna identifies the antenna; it becomes the alert scope and the
	// lion_health_drift_lambda gauge label, so ids must come from
	// configuration, never from request input.
	Antenna string
	// Center is the calibrated phase center.
	Center geom.Vec3
	// Offset is the calibrated phase offset Δθ, radians in [0, 2π).
	Offset float64
	// Lambda is the carrier wavelength, metres.
	Lambda float64
	// Window is the sliding sample window the re-estimate averages over;
	// zero defaults to 256.
	Window int
	// MinSamples gates the estimate until the window holds this many
	// samples; zero defaults to 32.
	MinSamples int
}

func (c Calibration) validate() error {
	if c.Antenna == "" {
		return fmt.Errorf("health: calibration needs an antenna id")
	}
	if !(c.Lambda > 0) {
		return fmt.Errorf("health: calibration %q: wavelength %v must be positive", c.Antenna, c.Lambda)
	}
	if !c.Center.IsFinite() || math.IsNaN(c.Offset) || math.IsInf(c.Offset, 0) {
		return fmt.Errorf("health: calibration %q has non-finite fields", c.Antenna)
	}
	if c.Window < 0 || c.MinSamples < 0 {
		return fmt.Errorf("health: calibration %q has negative window", c.Antenna)
	}
	return nil
}

func (c Calibration) window() int {
	if c.Window <= 0 {
		return 256
	}
	return c.Window
}

func (c Calibration) minSamples() int {
	if c.MinSamples <= 0 {
		return 32
	}
	return c.MinSamples
}

// DriftStatus is a point-in-time view of one antenna's drift estimate.
type DriftStatus struct {
	Antenna string
	// Calibrated is the recorded offset, radians.
	Calibrated float64
	// Estimated is the sliding-window re-estimate of the offset, radians in
	// [0, 2π). Zero until MinSamples have been seen (Valid reports which).
	Estimated float64
	// DriftRad is the signed wrapped difference estimated − calibrated,
	// radians in (−π, π].
	DriftRad float64
	// DriftLambda is |DriftRad|/4π: the equivalent ranging error as a
	// fraction of the wavelength — the quantity the drift rule thresholds.
	DriftLambda float64
	// Samples is the current window fill.
	Samples int
	// Valid reports whether the window has reached MinSamples.
	Valid bool
}

// driftEstimator re-estimates one antenna's phase offset over a sliding
// window of samples. Each sample (pos, wrapped phase) yields an
// instantaneous offset measurement wrapped − 4π·d/λ; the window keeps their
// unit vectors on the circle with running sums, so the circular mean — the
// same robust estimator core.PhaseOffset uses for calibration proper — is
// O(1) per sample.
type driftEstimator struct {
	cal            Calibration
	sin, cos       []float64
	n, next        int
	sumSin, sumCos float64
}

// minMeanResultant is the validity floor on the circular mean's resultant
// length per sample, |Σe^{iθ}|/n. A resultant this small means the window's
// instantaneous offsets are spread (near-)uniformly around the circle —
// antipodal or degenerate input — so the mean direction is numerically
// meaningless. An exact-zero check is useless here: floating-point
// cancellation leaves a ~1e-16 remainder that atan2 happily turns into a
// confident garbage angle.
const minMeanResultant = 1e-9

func newDriftEstimator(cal Calibration) *driftEstimator {
	w := cal.window()
	return &driftEstimator{cal: cal, sin: make([]float64, w), cos: make([]float64, w)}
}

// add records one streamed sample.
func (d *driftEstimator) add(pos geom.Vec3, phase float64) {
	diff := phase - rf.PhaseOfDistance(d.cal.Center.Dist(pos), d.cal.Lambda)
	s, c := math.Sincos(diff)
	if d.n == len(d.sin) {
		d.sumSin -= d.sin[d.next]
		d.sumCos -= d.cos[d.next]
	} else {
		d.n++
	}
	d.sin[d.next], d.cos[d.next] = s, c
	d.next = (d.next + 1) % len(d.sin)
	d.sumSin += s
	d.sumCos += c
	// The running add/subtract pair leaks one rounding error per slide, a
	// random walk that never decays over an unbounded stream. Once per full
	// ring rotation, resummate exactly from the stored window so the
	// accumulated error is bounded by one window's worth of rounding
	// regardless of stream length.
	if d.next == 0 && d.n == len(d.sin) {
		d.refresh()
	}
}

// refresh recomputes the running sums exactly from the ring contents.
func (d *driftEstimator) refresh() {
	var ss, sc float64
	for i := 0; i < d.n; i++ {
		ss += d.sin[i]
		sc += d.cos[i]
	}
	d.sumSin, d.sumCos = ss, sc
}

// status computes the current drift estimate.
func (d *driftEstimator) status() DriftStatus {
	st := DriftStatus{Antenna: d.cal.Antenna, Calibrated: d.cal.Offset, Samples: d.n}
	if d.n < d.cal.minSamples() ||
		math.Hypot(d.sumSin, d.sumCos) < minMeanResultant*float64(d.n) {
		return st
	}
	st.Valid = true
	st.Estimated = rf.WrapPhase(math.Atan2(d.sumSin, d.sumCos))
	st.DriftRad = rf.WrapPhaseSigned(st.Estimated - d.cal.Offset)
	st.DriftLambda = math.Abs(st.DriftRad) / (4 * math.Pi)
	return st
}
