package health

import (
	"testing"
	"time"
)

// solveAt builds a healthy observation at stream time t.
func solveAt(t time.Duration, residual float64) SolveObservation {
	return SolveObservation{
		Tag: "T1", Time: t, Window: 64, Residual: residual,
		Condition: 10, Iterations: 3, Latency: 100 * time.Microsecond,
	}
}

// staticResidualMonitor builds a monitor with one static residual rule.
func staticResidualMonitor(t *testing.T, hold, resolve time.Duration) *Monitor {
	t.Helper()
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_static", Signal: SignalResidual, Kind: KindStatic,
			Threshold: 1.0, HoldDown: hold, ResolveAfter: resolve, Severity: SevCritical,
		}},
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func findAlert(alerts []Alert, rule string, state State) *Alert {
	for i := range alerts {
		if alerts[i].Rule == rule && alerts[i].State == state {
			return &alerts[i]
		}
	}
	return nil
}

func TestAlertPendingFiringResolved(t *testing.T) {
	m := staticResidualMonitor(t, 2*time.Second, 3*time.Second)

	// Healthy traffic: no alerts.
	m.ObserveSolve(solveAt(1*time.Second, 0.5))
	if got := m.Alerts(); len(got) != 0 {
		t.Fatalf("healthy monitor has alerts: %+v", got)
	}

	// First violation: pending.
	m.ObserveSolve(solveAt(2*time.Second, 5))
	a := findAlert(m.Alerts(), "residual_static", StatePending)
	if a == nil {
		t.Fatalf("no pending alert after violation: %+v", m.Alerts())
	}
	if a.Scope != "tag:T1" || a.Value != 5 || a.Threshold != 1 {
		t.Errorf("pending alert = %+v", a)
	}
	if m.CriticalFiring() {
		t.Error("CriticalFiring true while only pending")
	}

	// Still violating inside the hold-down: stays pending.
	m.ObserveSolve(solveAt(3*time.Second, 6))
	if findAlert(m.Alerts(), "residual_static", StatePending) == nil {
		t.Fatalf("alert left pending before hold-down: %+v", m.Alerts())
	}

	// Hold-down (2 s since start at t=2 s) expires at t=4 s: fires.
	m.ObserveSolve(solveAt(4*time.Second, 7))
	f := findAlert(m.Alerts(), "residual_static", StateFiring)
	if f == nil {
		t.Fatalf("alert did not fire after hold-down: %+v", m.Alerts())
	}
	if f.FiredAt != 4*time.Second || f.StartedAt != 2*time.Second {
		t.Errorf("FiredAt = %v StartedAt = %v, want 4s / 2s", f.FiredAt, f.StartedAt)
	}
	if !m.CriticalFiring() {
		t.Error("CriticalFiring false with a firing critical alert")
	}

	// Healthy again: needs 3 s of health to resolve.
	m.ObserveSolve(solveAt(5*time.Second, 0.1))
	if findAlert(m.Alerts(), "residual_static", StateFiring) == nil {
		t.Fatalf("alert resolved before hysteresis: %+v", m.Alerts())
	}
	// A violation inside the resolve window restarts the hysteresis.
	m.ObserveSolve(solveAt(6*time.Second, 9))
	m.ObserveSolve(solveAt(7*time.Second, 0.1))
	m.ObserveSolve(solveAt(9*time.Second, 0.1))
	if findAlert(m.Alerts(), "residual_static", StateFiring) == nil {
		t.Fatalf("alert resolved too early after re-violation: %+v", m.Alerts())
	}
	m.ObserveSolve(solveAt(10*time.Second, 0.1))
	r := findAlert(m.Alerts(), "residual_static", StateResolved)
	if r == nil {
		t.Fatalf("alert did not resolve: %+v", m.Alerts())
	}
	if r.ResolvedAt != 10*time.Second {
		t.Errorf("ResolvedAt = %v, want 10s", r.ResolvedAt)
	}
	if m.CriticalFiring() {
		t.Error("CriticalFiring true after resolve")
	}
}

func TestAlertDebounceDiscardsHealedPending(t *testing.T) {
	m := staticResidualMonitor(t, 5*time.Second, 0)
	m.ObserveSolve(solveAt(1*time.Second, 5)) // pending
	m.ObserveSolve(solveAt(2*time.Second, 0.5))
	if got := m.Alerts(); len(got) != 0 {
		t.Fatalf("healed pending alert survived: %+v", got)
	}
	// A later violation starts a fresh pending with a fresh hold-down.
	m.ObserveSolve(solveAt(3*time.Second, 5))
	a := findAlert(m.Alerts(), "residual_static", StatePending)
	if a == nil || a.StartedAt != 3*time.Second {
		t.Fatalf("restarted pending = %+v", a)
	}
}

func TestAlertZeroHoldDownFiresImmediately(t *testing.T) {
	m := staticResidualMonitor(t, 0, 0)
	m.ObserveSolve(solveAt(1*time.Second, 5))
	if findAlert(m.Alerts(), "residual_static", StateFiring) == nil {
		t.Fatalf("zero hold-down must fire on the first violating tick: %+v", m.Alerts())
	}
}

func TestDeviationRuleWarmupGate(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_dev", Signal: SignalResidual, Kind: KindDeviation,
			Threshold: 3, HoldDown: time.Second, Severity: SevWarning,
		}},
		MinBaseline: 8,
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An extreme value with no established baseline must not alert.
	m.ObserveSolve(solveAt(1*time.Second, 100))
	if got := m.Alerts(); len(got) != 0 {
		t.Fatalf("deviation alert during warmup: %+v", got)
	}
}

func TestDeviationRuleDetectsAnomaly(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_dev", Signal: SignalResidual, Kind: KindDeviation,
			Threshold: 3, HoldDown: 0, Severity: SevWarning,
		}},
		MinBaseline: 8,
		FlightDepth: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Establish a tight baseline around 1.0.
	for i := 0; i < 20; i++ {
		m.ObserveSolve(solveAt(time.Duration(i+1)*time.Second, 1+0.01*float64(i%5)))
	}
	if got := m.Alerts(); len(got) != 0 {
		t.Fatalf("steady baseline raised alerts: %+v", got)
	}
	// A 20x step is hundreds of sigma out: fires immediately (no hold-down).
	m.ObserveSolve(solveAt(30*time.Second, 20))
	a := findAlert(m.Alerts(), "residual_dev", StateFiring)
	if a == nil {
		t.Fatalf("no firing deviation alert: %+v", m.Alerts())
	}
	if a.RawValue != 20 || a.Value < 3 {
		t.Errorf("deviation alert Value (z) = %v RawValue = %v", a.Value, a.RawValue)
	}
	if a.Baseline > 1.1 {
		t.Errorf("alert Baseline = %v, want the pre-anomaly mean near 1.02", a.Baseline)
	}
	// Baselines self-heal: sustained 20s become the new normal and the
	// alert eventually resolves even without an operator fix.
	for i := 31; i < 80; i++ {
		m.ObserveSolve(solveAt(time.Duration(i)*time.Second, 20))
	}
	if findAlert(m.Alerts(), "residual_dev", StateResolved) == nil {
		t.Fatalf("deviation alert did not self-heal: %+v", m.Alerts())
	}
}

func TestResolvedHistoryBounded(t *testing.T) {
	m, err := New(Config{
		Rules: []Rule{{
			Name: "residual_static", Signal: SignalResidual, Kind: KindStatic,
			Threshold: 1, HoldDown: 0, Severity: SevWarning,
		}},
		ResolvedHistory: 2,
		FlightDepth:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Duration(0)
	for cycle := 0; cycle < 5; cycle++ {
		m.ObserveSolve(solveAt(base+1*time.Second, 5))
		m.ObserveSolve(solveAt(base+2*time.Second, 5)) // fires
		m.ObserveSolve(solveAt(base+3*time.Second, 0)) // resolves (no hysteresis)
		base += 10 * time.Second
	}
	resolved := 0
	for _, a := range m.Alerts() {
		if a.State == StateResolved {
			resolved++
		}
	}
	if resolved != 2 {
		t.Errorf("resolved history holds %d, want 2", resolved)
	}
}
