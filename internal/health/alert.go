package health

import "time"

// State is an alert's lifecycle stage.
type State int

const (
	// StatePending marks a violation inside its hold-down: observed, not
	// yet confirmed. Pending alerts that heal are discarded (debounce).
	StatePending State = iota
	// StateFiring marks a confirmed violation.
	StateFiring
	// StateResolved marks a formerly firing alert whose signal stayed
	// healthy for the rule's resolve hysteresis.
	StateResolved
)

// String names the state for wire output.
func (s State) String() string {
	switch s {
	case StateFiring:
		return "firing"
	case StateResolved:
		return "resolved"
	default:
		return "pending"
	}
}

// Alert is one rule violation moving through pending → firing → resolved.
// Timestamps are stream time (the monitor's logical clock): the Time fields
// of the observations that drove each transition.
type Alert struct {
	// Rule, Signal and Severity copy the violated rule's identity.
	Rule     string
	Signal   Signal
	Severity Severity
	// Scope is "tag:<id>" for per-tag signals, "antenna:<id>" for drift,
	// "stream" for global rates.
	Scope string
	// State is the lifecycle stage.
	State State
	// Value is the most recent violating signal value (for deviation rules,
	// the z-score; RawValue then carries the underlying signal).
	Value float64
	// RawValue is the underlying signal value for deviation rules; equal to
	// Value for static rules.
	RawValue float64
	// Baseline is the scope's window mean at the last evaluation (deviation
	// rules only).
	Baseline float64
	// Threshold copies the rule's limit.
	Threshold float64
	// StartedAt is when the violation was first observed; FiredAt and
	// ResolvedAt are zero until those transitions happen. UpdatedAt tracks
	// the last evaluation that touched the alert.
	StartedAt  time.Duration
	FiredAt    time.Duration
	ResolvedAt time.Duration
	UpdatedAt  time.Duration
	// Evidence is the flight-recorder snapshot taken when the alert fired:
	// the recent solve traces of the tag whose observation confirmed the
	// violation. Nil when the flight recorder is disabled or empty.
	Evidence []TraceRecord
}

// alertState wraps an active alert with its hysteresis bookkeeping.
type alertState struct {
	Alert
	healthySince time.Duration
	healthy      bool
}

// alertKey identifies one (rule, scope) state machine.
type alertKey struct {
	rule  string
	scope string
}
