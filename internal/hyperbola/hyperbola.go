// Package hyperbola implements the model-based baseline from the paper's
// related work (Sec. VI): hyperbola-based localization. Each pair of tag
// positions (i, j) with measured distance difference Δd_ij defines one
// hyperbola |p−q_i| − |p−q_j| = Δd_ij; the target lies at the intersection.
// Solving the stack of quadratic constraints requires non-linear iteration —
// here Gauss–Newton with a damped step — which is precisely the cost LION's
// radical-line reduction avoids.
package hyperbola

import (
	"errors"
	"fmt"
	"math"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/mat"
	"github.com/rfid-lion/lion/internal/rf"
)

// Errors returned by the solver.
var (
	ErrNoConverge = errors.New("hyperbola: Gauss-Newton did not converge")
	ErrTooFewObs  = errors.New("hyperbola: too few observations or pairs")
)

// Options configures the Gauss–Newton iteration.
type Options struct {
	// MaxIterations bounds the iteration count; zero means 50.
	MaxIterations int
	// Tolerance stops when the update step is shorter than this (metres);
	// zero means 1e-8.
	Tolerance float64
	// Dim is 2 or 3; zero means 2.
	Dim int
}

func (o Options) maxIter() int {
	if o.MaxIterations <= 0 {
		return 50
	}
	return o.MaxIterations
}

func (o Options) tol() float64 {
	if o.Tolerance <= 0 {
		return 1e-8
	}
	return o.Tolerance
}

func (o Options) dim() int {
	if o.Dim == 0 {
		return 2
	}
	return o.Dim
}

// Result is the hyperbola-intersection estimate.
type Result struct {
	Position   geom.Vec3
	Iterations int
	// RMSResidual is the root-mean-square distance-difference residual at
	// the estimate, in metres.
	RMSResidual float64
}

// Locate estimates the target position from observations on a known
// trajectory by intersecting pairwise hyperbolas. The measured distance
// differences come from the unwrapped phase differences (Eq. 6). init seeds
// the iteration — a coarse guess (e.g. a metre from the trajectory toward
// the reader) suffices in practice.
func Locate(obs []core.PosPhase, lambda float64, pairs []core.Pair, init geom.Vec3, opts Options) (*Result, error) {
	dim := opts.dim()
	if dim != 2 && dim != 3 {
		return nil, fmt.Errorf("hyperbola: dimension %d not supported", dim)
	}
	if len(pairs) < dim {
		return nil, ErrTooFewObs
	}
	for _, pr := range pairs {
		if pr.I < 0 || pr.I >= len(obs) || pr.J < 0 || pr.J >= len(obs) || pr.I == pr.J {
			return nil, fmt.Errorf("hyperbola: invalid pair (%d,%d): %w",
				pr.I, pr.J, ErrTooFewObs)
		}
	}

	// Measured distance differences per pair.
	dd := make([]float64, len(pairs))
	for r, pr := range pairs {
		dd[r] = rf.DistanceOfPhaseDelta(obs[pr.I].Theta-obs[pr.J].Theta, lambda)
	}

	p := init
	var rms float64
	for iter := 1; iter <= opts.maxIter(); iter++ {
		jac := mat.NewDense(len(pairs), dim)
		res := make([]float64, len(pairs))
		var ssq float64
		for r, pr := range pairs {
			qi, qj := obs[pr.I].Pos, obs[pr.J].Pos
			di := p.Dist(qi)
			dj := p.Dist(qj)
			if di < 1e-9 || dj < 1e-9 {
				di, dj = math.Max(di, 1e-9), math.Max(dj, 1e-9)
			}
			res[r] = (di - dj) - dd[r]
			ssq += res[r] * res[r]
			gi := p.Sub(qi).Scale(1 / di)
			gj := p.Sub(qj).Scale(1 / dj)
			g := gi.Sub(gj)
			jac.Set(r, 0, g.X)
			jac.Set(r, 1, g.Y)
			if dim == 3 {
				jac.Set(r, 2, g.Z)
			}
		}
		rms = math.Sqrt(ssq / float64(len(pairs)))

		// Gauss-Newton step: solve J·δ = −res in the least-squares sense,
		// with Levenberg damping on the normal equations for robustness.
		gram := jac.Gram()
		for c := 0; c < dim; c++ {
			gram.Set(c, c, gram.At(c, c)*(1+1e-9)+1e-12)
		}
		rhs, err := jac.TMulVec(res)
		if err != nil {
			return nil, fmt.Errorf("hyperbola: %w", err)
		}
		for i := range rhs {
			rhs[i] = -rhs[i]
		}
		step, err := mat.SolveCholesky(gram, rhs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoConverge, err)
		}
		delta := geom.V3(step[0], step[1], 0)
		if dim == 3 {
			delta.Z = step[2]
		}
		// Damp overlong steps to keep the iteration inside the basin.
		if n := delta.Norm(); n > 0.5 {
			delta = delta.Scale(0.5 / n)
		}
		p = p.Add(delta)
		if delta.Norm() < opts.tol() {
			return &Result{Position: p, Iterations: iter, RMSResidual: rms}, nil
		}
	}
	return &Result{Position: p, Iterations: opts.maxIter(), RMSResidual: rms}, ErrNoConverge
}
