package hyperbola

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

const testLambda = 0.3256

func genObs(ant geom.Vec3, positions []geom.Vec3, noiseStd float64, rng *stats.RNG) []core.PosPhase {
	obs := make([]core.PosPhase, len(positions))
	for i, p := range positions {
		theta := rf.PhaseOfDistance(ant.Dist(p), testLambda)
		if noiseStd > 0 {
			theta += rng.Normal(0, noiseStd)
		}
		obs[i] = core.PosPhase{Pos: p, Theta: theta}
	}
	return obs
}

func circlePositions(radius float64, n int) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.V3(radius*math.Cos(a), radius*math.Sin(a), 0)
	}
	return out
}

func TestLocate2DNoiseless(t *testing.T) {
	ant := geom.V3(1, 0.2, 0)
	obs := genObs(ant, circlePositions(0.3, 72), 0, nil)
	pairs := core.StridePairs(len(obs), 18)
	res, err := Locate(obs, testLambda, pairs, geom.V3(0.5, 0.5, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Position.Dist(ant); got > 1e-6 {
		t.Errorf("error %v m (got %v)", got, res.Position)
	}
	if res.RMSResidual > 1e-6 {
		t.Errorf("RMS residual = %v", res.RMSResidual)
	}
}

func TestLocate2DNoisy(t *testing.T) {
	rng := stats.NewRNG(2)
	ant := geom.V3(1, 0, 0)
	var sum float64
	const trials = 10
	for i := 0; i < trials; i++ {
		obs := genObs(ant, circlePositions(0.3, 120), 0.1, rng)
		pairs := core.StridePairs(len(obs), 30)
		res, err := Locate(obs, testLambda, pairs, geom.V3(0.5, 0.3, 0), Options{})
		if err != nil && !errors.Is(err, ErrNoConverge) {
			t.Fatal(err)
		}
		sum += res.Position.Dist(ant)
	}
	if avg := sum / trials; avg > 0.04 {
		t.Errorf("average noisy error %v m", avg)
	}
}

func TestLocate3D(t *testing.T) {
	ant := geom.V3(0.2, 0.9, 0.3)
	var positions []geom.Vec3
	for i := 0; i < 120; i++ {
		a := 4 * math.Pi * float64(i) / 120
		positions = append(positions,
			geom.V3(0.3*math.Cos(a), 0.3*math.Sin(a), 0.25*float64(i)/120))
	}
	obs := genObs(ant, positions, 0, nil)
	pairs := core.StridePairs(len(obs), 30)
	res, err := Locate(obs, testLambda, pairs, geom.V3(0, 0.5, 0), Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Position.Dist(ant); got > 1e-5 {
		t.Errorf("3-D error %v m (got %v)", got, res.Position)
	}
}

func TestLocateValidation(t *testing.T) {
	obs := genObs(geom.V3(1, 0, 0), circlePositions(0.3, 10), 0, nil)
	if _, err := Locate(obs, testLambda, nil, geom.Vec3{}, Options{}); !errors.Is(err, ErrTooFewObs) {
		t.Errorf("no pairs err = %v", err)
	}
	badPairs := []core.Pair{{I: 0, J: 99}, {I: 1, J: 2}, {I: 3, J: 4}}
	if _, err := Locate(obs, testLambda, badPairs, geom.Vec3{}, Options{}); !errors.Is(err, ErrTooFewObs) {
		t.Errorf("bad pair err = %v", err)
	}
	if _, err := Locate(obs, testLambda, core.StridePairs(10, 2), geom.Vec3{}, Options{Dim: 4}); err == nil {
		t.Error("dim 4 accepted")
	}
}

func TestLocateIterationBudget(t *testing.T) {
	ant := geom.V3(1, 0, 0)
	obs := genObs(ant, circlePositions(0.3, 60), 0, nil)
	pairs := core.StridePairs(len(obs), 15)
	_, err := Locate(obs, testLambda, pairs, geom.V3(0.5, 0.5, 0), Options{MaxIterations: 1})
	if !errors.Is(err, ErrNoConverge) {
		t.Errorf("1-iteration err = %v, want ErrNoConverge", err)
	}
}

func TestLocateConvergesFromFarInit(t *testing.T) {
	ant := geom.V3(0.8, 0.4, 0)
	obs := genObs(ant, circlePositions(0.3, 90), 0, nil)
	pairs := core.StridePairs(len(obs), 22)
	res, err := Locate(obs, testLambda, pairs, geom.V3(3, -2, 0), Options{MaxIterations: 200})
	if err != nil {
		t.Fatalf("far init failed: %v", err)
	}
	if got := res.Position.Dist(ant); got > 1e-5 {
		t.Errorf("far-init error %v m", got)
	}
}
