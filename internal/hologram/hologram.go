// Package hologram implements the hologram-based localization baseline the
// paper compares against: Tagoram's Differential Augmented Hologram (DAH).
//
// The surveillance area is cut into a grid; each grid position p is scored
// by how consistently the measured differential phases agree with the
// theoretical differential phases p would produce:
//
//	L(p) = | Σ_k w_k · exp( j·(Δθ_k − Δθ̂_k(p)) ) | / Σ_k w_k
//
// with Δθ_k = θ_k − θ_ref and Δθ̂_k(p) = 4π/λ·(|p−q_k| − |p−q_ref|).
// Using phase differences cancels the per-device phase offsets (Sec. II-C),
// and the augmented variant re-weights measurements by their phase error
// after a first unweighted pass (the weights of Fig. 4b). The grid with the
// highest likelihood is the estimate — fine accuracy therefore demands small
// grid cells and pays for them with computation, which is exactly the
// trade-off LION's linear model removes (Fig. 13b).
package hologram

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// Errors returned by the hologram solvers.
var (
	ErrBadGrid   = errors.New("hologram: grid bounds or step invalid")
	ErrTooFewObs = errors.New("hologram: need at least two measurements")
)

// Config describes the search volume and scoring options.
type Config struct {
	// Lambda is the carrier wavelength.
	Lambda float64
	// GridMin and GridMax bound the search volume. A 2-D search sets
	// GridMin.Z == GridMax.Z.
	GridMin, GridMax geom.Vec3
	// GridStep is the cell size in metres (the paper uses 1 mm).
	GridStep float64
	// Weighted enables the augmented re-weighting pass.
	Weighted bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lambda <= 0 {
		return fmt.Errorf("hologram: wavelength %v: %w", c.Lambda, ErrBadGrid)
	}
	if c.GridStep <= 0 {
		return fmt.Errorf("hologram: step %v: %w", c.GridStep, ErrBadGrid)
	}
	if c.GridMax.X < c.GridMin.X || c.GridMax.Y < c.GridMin.Y || c.GridMax.Z < c.GridMin.Z {
		return fmt.Errorf("hologram: inverted bounds: %w", ErrBadGrid)
	}
	return nil
}

// Result is the hologram estimate.
type Result struct {
	// Position is the grid cell with the highest likelihood.
	Position geom.Vec3
	// Likelihood is the normalised score of the winning cell, in [0, 1].
	Likelihood float64
	// Evaluations counts the scored grid cells (a proxy for cost).
	Evaluations int
}

// Locate runs the differential (augmented) hologram over measurements taken
// at known tag positions, estimating the target (antenna) position. The
// reference measurement is the middle sample, mirroring LION's reference
// position.
func Locate(obs []core.PosPhase, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(obs) < 2 {
		return nil, ErrTooFewObs
	}
	ref := len(obs) / 2
	weights := make([]float64, len(obs))
	for i := range weights {
		weights[i] = 1
	}
	res := scoreGrid(obs, ref, weights, cfg)
	if cfg.Weighted {
		// Augmented pass: weight each measurement by its phase consistency
		// at the first-pass winner, then re-score.
		reweight(obs, ref, res.Position, cfg.Lambda, weights)
		second := scoreGrid(obs, ref, weights, cfg)
		second.Evaluations += res.Evaluations
		res = second
	}
	return res, nil
}

// scoreGrid scans the whole grid and returns the best cell. Rows are scored
// concurrently; the reduction is deterministic (ties break toward the
// lowest row index, matching the serial scan order).
func scoreGrid(obs []core.PosPhase, ref int, weights []float64, cfg Config) *Result {
	refPos := obs[ref].Pos
	refTheta := obs[ref].Theta

	// Precompute per-measurement differential phases.
	dTheta := make([]float64, len(obs))
	for i, o := range obs {
		dTheta[i] = o.Theta - refTheta
	}
	k := 4 * math.Pi / cfg.Lambda

	var wSum float64
	for _, w := range weights {
		wSum += w
	}
	if wSum == 0 {
		wSum = 1
	}

	nx := axisCells(cfg.GridMin.X, cfg.GridMax.X, cfg.GridStep)
	ny := axisCells(cfg.GridMin.Y, cfg.GridMax.Y, cfg.GridStep)
	nz := axisCells(cfg.GridMin.Z, cfg.GridMax.Z, cfg.GridStep)
	rows := ny * nz

	// rowBest holds each (z, y) row's winning cell.
	type rowResult struct {
		score float64
		pos   geom.Vec3
	}
	rowBest := make([]rowResult, rows)

	scoreRow := func(row int) {
		iz, iy := row/ny, row%ny
		z := cfg.GridMin.Z + float64(iz)*cfg.GridStep
		y := cfg.GridMin.Y + float64(iy)*cfg.GridStep
		local := rowResult{score: -1}
		for ix := 0; ix < nx; ix++ {
			p := geom.V3(cfg.GridMin.X+float64(ix)*cfg.GridStep, y, z)
			dRef := p.Dist(refPos)
			var re, im float64
			for i, o := range obs {
				predicted := k * (p.Dist(o.Pos) - dRef)
				s, c := math.Sincos(dTheta[i] - predicted)
				re += weights[i] * c
				im += weights[i] * s
			}
			if score := math.Hypot(re, im) / wSum; score > local.score {
				local.score = score
				local.pos = p
			}
		}
		rowBest[row] = local
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || rows < 4 {
		for row := 0; row < rows; row++ {
			scoreRow(row)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					row := int(next.Add(1)) - 1
					if row >= rows {
						return
					}
					scoreRow(row)
				}
			}()
		}
		wg.Wait()
	}

	best := &Result{Likelihood: -1, Evaluations: rows * nx}
	for _, r := range rowBest {
		if r.score > best.Likelihood {
			best.Likelihood = r.score
			best.Position = r.pos
		}
	}
	return best
}

// reweight assigns Gaussian weights from the phase error at the candidate
// position (the "augmented" step).
func reweight(obs []core.PosPhase, ref int, candidate geom.Vec3, lambda float64, weights []float64) {
	refPos := obs[ref].Pos
	refTheta := obs[ref].Theta
	k := 4 * math.Pi / lambda
	dRef := candidate.Dist(refPos)

	errs := make([]float64, len(obs))
	var mu float64
	for i, o := range obs {
		predicted := k * (candidate.Dist(o.Pos) - dRef)
		errs[i] = rf.WrapPhaseSigned((o.Theta - refTheta) - predicted)
		mu += errs[i]
	}
	mu /= float64(len(errs))
	var sigma float64
	for _, e := range errs {
		sigma += (e - mu) * (e - mu)
	}
	sigma = math.Sqrt(sigma / float64(len(errs)))
	if sigma == 0 {
		return
	}
	for i, e := range errs {
		d := (e - mu) / sigma
		weights[i] = math.Exp(-d * d / 2)
	}
}

// axisCells returns the number of grid positions along one axis.
func axisCells(lo, hi, step float64) int {
	return int(math.Floor((hi-lo)/step+1e-9)) + 1
}

// forEachCell visits every grid cell.
func forEachCell(cfg Config, visit func(geom.Vec3)) {
	nx := axisCells(cfg.GridMin.X, cfg.GridMax.X, cfg.GridStep)
	ny := axisCells(cfg.GridMin.Y, cfg.GridMax.Y, cfg.GridStep)
	nz := axisCells(cfg.GridMin.Z, cfg.GridMax.Z, cfg.GridStep)
	for iz := 0; iz < nz; iz++ {
		z := cfg.GridMin.Z + float64(iz)*cfg.GridStep
		for iy := 0; iy < ny; iy++ {
			y := cfg.GridMin.Y + float64(iy)*cfg.GridStep
			for ix := 0; ix < nx; ix++ {
				visit(geom.V3(cfg.GridMin.X+float64(ix)*cfg.GridStep, y, z))
			}
		}
	}
}

// CellCount returns the number of grid cells the configuration will score
// per pass, useful for cost accounting in the benchmarks.
func (c Config) CellCount() int {
	return axisCells(c.GridMin.X, c.GridMax.X, c.GridStep) *
		axisCells(c.GridMin.Y, c.GridMax.Y, c.GridStep) *
		axisCells(c.GridMin.Z, c.GridMax.Z, c.GridStep)
}
