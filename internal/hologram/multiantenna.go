package hologram

import (
	"math"

	"github.com/rfid-lion/lion/internal/geom"
)

// AntennaReading is one static antenna's averaged measurement of a static
// tag, used by the multi-antenna case study (Sec. V-F-1, Figs. 19–20).
type AntennaReading struct {
	// Center is the antenna position assumed for scoring: the physical
	// center when uncalibrated, or the calibrated phase center.
	Center geom.Vec3
	// Phase is the measured wrapped phase.
	Phase float64
	// Offset is the calibrated per-antenna phase offset to subtract;
	// zero when the offset is uncalibrated.
	Offset float64
}

// LocateTagMultiAntenna estimates a static tag's position from readings of
// several antennas with the differential hologram: candidate positions are
// scored by the consistency of pairwise phase differences, which cancels
// whatever common offset remains. Calibration quality enters through the
// Center and Offset fields — this is exactly the knob the Fig. 20 case study
// turns (no calibration → center calibration → center+offset calibration).
func LocateTagMultiAntenna(readings []AntennaReading, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(readings) < 2 {
		return nil, ErrTooFewObs
	}
	k := 4 * math.Pi / cfg.Lambda
	corrected := make([]float64, len(readings))
	for i, r := range readings {
		corrected[i] = r.Phase - r.Offset
	}

	best := &Result{Likelihood: -1}
	nPairs := float64(len(readings) * (len(readings) - 1) / 2)
	forEachCell(cfg, func(p geom.Vec3) {
		var re, im float64
		for i := 0; i < len(readings); i++ {
			di := p.Dist(readings[i].Center)
			for j := i + 1; j < len(readings); j++ {
				dj := p.Dist(readings[j].Center)
				measured := corrected[i] - corrected[j]
				predicted := k * (di - dj)
				s, c := math.Sincos(measured - predicted)
				re += c
				im += s
			}
		}
		score := math.Hypot(re, im) / nPairs
		best.Evaluations++
		if score > best.Likelihood {
			best.Likelihood = score
			best.Position = p
		}
	})
	return best, nil
}
