package hologram

import (
	"errors"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/stats"
)

const testLambda = 0.3256

func genObs(ant geom.Vec3, positions []geom.Vec3, noiseStd, offset float64, rng *stats.RNG) []core.PosPhase {
	obs := make([]core.PosPhase, len(positions))
	for i, p := range positions {
		theta := rf.PhaseOfDistance(ant.Dist(p), testLambda) + offset
		if noiseStd > 0 {
			theta += rng.Normal(0, noiseStd)
		}
		obs[i] = core.PosPhase{Pos: p, Theta: rf.WrapPhase(theta)}
	}
	return obs
}

func circlePositions(center geom.Vec3, radius float64, n int) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		a := 2 * math.Pi * float64(i) / float64(n)
		out[i] = geom.V3(center.X+radius*math.Cos(a), center.Y+radius*math.Sin(a), center.Z)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(0, 0, 0), GridMax: geom.V3(1, 1, 0),
		GridStep: 0.01,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Lambda = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadGrid) {
		t.Errorf("zero lambda err = %v", err)
	}
	bad = good
	bad.GridStep = 0
	if err := bad.Validate(); !errors.Is(err, ErrBadGrid) {
		t.Errorf("zero step err = %v", err)
	}
	bad = good
	bad.GridMax = geom.V3(-1, 0, 0)
	if err := bad.Validate(); !errors.Is(err, ErrBadGrid) {
		t.Errorf("inverted bounds err = %v", err)
	}
}

func TestLocateNoiselessFindsAntenna(t *testing.T) {
	ant := geom.V3(0.52, 0.51, 0)
	positions := circlePositions(geom.V3(0, 0, 0), 0.3, 72)
	obs := genObs(ant, positions, 0, 1.7, nil) // constant offset cancels
	cfg := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(0.3, 0.3, 0), GridMax: geom.V3(0.7, 0.7, 0),
		GridStep: 0.005,
	}
	res, err := Locate(obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Position.Dist(ant); got > 0.008 {
		t.Errorf("error %v m (got %v)", got, res.Position)
	}
	if res.Likelihood < 0.99 {
		t.Errorf("noiseless likelihood = %v, want ~1", res.Likelihood)
	}
	if res.Evaluations != cfg.CellCount() {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, cfg.CellCount())
	}
}

func TestLocateWeightedImprovesUnderBurstNoise(t *testing.T) {
	rng := stats.NewRNG(9)
	ant := geom.V3(0.5, 0.5, 0)
	var plain, weighted float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		positions := circlePositions(geom.V3(0, 0, 0), 0.3, 72)
		obs := genObs(ant, positions, 0.05, 0, rng)
		for i := 5; i < 15; i++ { // corrupted burst away from reference
			obs[i].Theta = rf.WrapPhase(obs[i].Theta + 2.0)
		}
		cfg := Config{
			Lambda:  testLambda,
			GridMin: geom.V3(0.4, 0.4, 0), GridMax: geom.V3(0.6, 0.6, 0),
			GridStep: 0.004,
		}
		rp, err := Locate(obs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Weighted = true
		rw, err := Locate(obs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plain += rp.Position.Dist(ant)
		weighted += rw.Position.Dist(ant)
	}
	if weighted > plain {
		t.Errorf("weighted (%v) worse than plain (%v)", weighted/trials, plain/trials)
	}
}

func TestLocateValidation(t *testing.T) {
	cfg := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(0, 0, 0), GridMax: geom.V3(1, 1, 0),
		GridStep: 0.01,
	}
	if _, err := Locate(nil, cfg); !errors.Is(err, ErrTooFewObs) {
		t.Errorf("empty obs err = %v", err)
	}
	if _, err := Locate([]core.PosPhase{{}}, cfg); !errors.Is(err, ErrTooFewObs) {
		t.Errorf("single obs err = %v", err)
	}
}

func TestLocate3DGrid(t *testing.T) {
	ant := geom.V3(0.5, 0.5, 0.1)
	// Two-plane trajectory for z-diversity.
	positions := append(
		circlePositions(geom.V3(0, 0, 0), 0.3, 36),
		circlePositions(geom.V3(0, 0, 0.2), 0.3, 36)...)
	obs := genObs(ant, positions, 0, 0, nil)
	cfg := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(0.4, 0.4, 0), GridMax: geom.V3(0.6, 0.6, 0.2),
		GridStep: 0.01,
	}
	res, err := Locate(obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Position.Dist(ant); got > 0.02 {
		t.Errorf("3-D error %v m (got %v)", got, res.Position)
	}
	wantCells := cfg.CellCount()
	if res.Evaluations != wantCells {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, wantCells)
	}
}

func TestCellCount(t *testing.T) {
	cfg := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(0, 0, 0), GridMax: geom.V3(0.1, 0.2, 0),
		GridStep: 0.1,
	}
	if got := cfg.CellCount(); got != 2*3*1 {
		t.Errorf("CellCount = %d", got)
	}
}

func TestLocateTagMultiAntenna(t *testing.T) {
	// Three antennas in a line (the Fig. 19 deployment), static tag.
	tag := geom.V3(-0.1, 0.8, 0)
	offsets := []float64{3.98, 2.74, 4.07} // the paper's measured offsets
	var readings []AntennaReading
	for i, ax := range []float64{-0.3, 0, 0.3} {
		center := geom.V3(ax, 0, 0)
		phase := rf.WrapPhase(rf.PhaseOfDistance(tag.Dist(center), testLambda) + offsets[i])
		readings = append(readings, AntennaReading{
			Center: center,
			Phase:  phase,
			Offset: offsets[i], // fully calibrated
		})
	}
	cfg := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(-0.5, 0.4, 0), GridMax: geom.V3(0.5, 1.2, 0),
		GridStep: 0.005,
	}
	res, err := LocateTagMultiAntenna(readings, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Position.Dist(tag); got > 0.02 {
		t.Errorf("calibrated error %v m (got %v)", got, res.Position)
	}

	// Without offset calibration the estimate must degrade.
	var uncal []AntennaReading
	for _, r := range readings {
		r.Offset = 0
		uncal = append(uncal, r)
	}
	res2, err := LocateTagMultiAntenna(uncal, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Position.Dist(tag) < res.Position.Dist(tag) {
		t.Errorf("uncalibrated (%v) beat calibrated (%v)",
			res2.Position.Dist(tag), res.Position.Dist(tag))
	}
}

func TestLocateTagMultiAntennaValidation(t *testing.T) {
	cfg := Config{
		Lambda:  testLambda,
		GridMin: geom.V3(0, 0, 0), GridMax: geom.V3(1, 1, 0),
		GridStep: 0.01,
	}
	if _, err := LocateTagMultiAntenna(nil, cfg); !errors.Is(err, ErrTooFewObs) {
		t.Errorf("empty readings err = %v", err)
	}
	bad := cfg
	bad.GridStep = -1
	if _, err := LocateTagMultiAntenna(make([]AntennaReading, 3), bad); !errors.Is(err, ErrBadGrid) {
		t.Errorf("bad grid err = %v", err)
	}
}
