// Package wire is the binary ingest codec: a length-prefixed, versioned
// frame format for batches of tagged samples, replacing per-line JSON
// decoding on the hot ingest path. NDJSON (internal/dataset) remains the
// compatibility format; the two codecs carry identical information and
// round-trip float64 fields bit-exactly.
//
// # Frame layout (version 1, little-endian, frozen by TestWireGolden)
//
//	offset  size      field
//	0       1         magic 'L' (0x4C)
//	1       1         magic 'W' (0x57)
//	2       1         version (1)
//	3       1         flags (bit 0 = trace extension; other bits must be 0)
//	4       uvarint   payload length in bytes
//	...     payload
//
// Payload (when flags bit 0 — FlagTrace — is set, a fixed 16-byte trace
// extension precedes the tag table and is counted in the payload length):
//
//	8 bytes   trace id            uint64 LE   (FlagTrace only)
//	8 bytes   router receive time int64 LE, unix nanoseconds (FlagTrace only)
//	uvarint   tagCount, then tagCount × { uvarint len; len bytes UTF-8 }
//	uvarint   sampleCount, then sampleCount × sample record
//
// Sample record:
//
//	uvarint   tag index into the frame's tag table
//	8 bytes   time_s     float64 bits
//	8 bytes   x_m        float64 bits
//	8 bytes   y_m        float64 bits
//	8 bytes   z_m        float64 bits
//	8 bytes   phase_rad  float64 bits
//	8 bytes   rssi_dbm   float64 bits
//	uvarint   zigzag(segment)
//	uvarint   zigzag(channel)
//
// The per-frame tag table exists because ingest batches concentrate on few
// tags: the decoder allocates each tag string once per frame, not once per
// sample. Frames are self-contained — any concatenation of frames is a valid
// stream, so shards can receive the router's re-batched frames and files
// written by `lionsim -format wire` can simply be catted together.
//
// Decoding is defensive: truncated frames, bad magic/version, length
// overflows, and out-of-range counts return errors without panicking, and
// allocation is bounded by the actual payload size, never by an attacker
// supplied count. Binary frames, unlike JSON, can encode NaN/Inf, so the
// decoder additionally rejects non-finite floats to keep the DecodeIngest
// guarantee of internal/dataset intact.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/rfid-lion/lion/internal/dataset"
)

// Version is the frame version this package encodes and the only one it
// accepts.
const Version = 1

// ContentType is the HTTP content type of a wire-framed request body.
const ContentType = "application/x-lion-wire"

// Frame limits. Decoders reject frames beyond them before allocating.
const (
	// MaxPayloadBytes bounds one frame's payload (16 MiB).
	MaxPayloadBytes = 16 << 20
	// MaxFrameTags bounds the per-frame tag table.
	MaxFrameTags = 1 << 16
	// MaxTagBytes bounds one tag id.
	MaxTagBytes = 255
	// minSampleBytes is the smallest possible sample record: three 1-byte
	// varints plus six fixed float64s. Claimed sample counts are checked
	// against remaining payload / minSampleBytes before any allocation.
	minSampleBytes = 3 + 6*8
)

// magic0, magic1 open every frame.
const (
	magic0 = 'L'
	magic1 = 'W'
)

// FlagTrace marks a frame carrying the 16-byte trace extension at the start
// of its payload: the pipeline trace id and the router's receive timestamp.
// It is the only defined flag bit; frames with any other bit set are corrupt.
//
// Compatibility: decoders predating this flag reject flagged frames
// (non-zero flags were ErrCorrupt in the original version 1), so senders must
// negotiate — lionroute only flags frames for shards whose /readyz advertises
// "wire_trace": true, and plain frames remain byte-identical to the original
// layout.
const FlagTrace byte = 0x01

// flagMask is the union of all defined flag bits.
const flagMask = FlagTrace

// extBytes is the fixed size of the trace extension.
const extBytes = 16

// Ext is the decoded trace extension of one flagged frame.
type Ext struct {
	// TraceID is the pipeline trace id assigned by the sampling router.
	TraceID uint64
	// RouterRecvUnixNano is the wall clock at which the router accepted the
	// batch, unix nanoseconds — the zero point of the end-to-end staleness
	// clock for the samples in this frame.
	RouterRecvUnixNano int64
}

// appendExt encodes the trace extension.
func appendExt(dst []byte, ext *Ext) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, ext.TraceID)
	return binary.LittleEndian.AppendUint64(dst, uint64(ext.RouterRecvUnixNano))
}

// decodeExt splits the trace extension off the front of a flagged payload.
func decodeExt(p []byte) (*Ext, []byte, error) {
	if len(p) < extBytes {
		return nil, p, fmt.Errorf("%w: %d payload bytes for a %d-byte trace extension",
			ErrCorrupt, len(p), extBytes)
	}
	ext := &Ext{
		TraceID:            binary.LittleEndian.Uint64(p[0:]),
		RouterRecvUnixNano: int64(binary.LittleEndian.Uint64(p[8:])),
	}
	return ext, p[extBytes:], nil
}

// Errors returned by the decoder. ErrTruncated means the input ended inside
// a frame — a streaming caller that buffers may read more and retry; all
// other errors are permanent for that stream.
var (
	ErrBadMagic  = errors.New("wire: bad frame magic")
	ErrVersion   = errors.New("wire: unsupported frame version")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrTooLarge  = errors.New("wire: frame exceeds size limits")
	ErrCorrupt   = errors.New("wire: corrupt frame")
	ErrSample    = errors.New("wire: bad sample")
)

// AppendFrame appends one encoded frame carrying samples to dst and returns
// the extended slice. Tags must be non-empty and at most MaxTagBytes bytes;
// one frame holds at most MaxFrameTags distinct tags and its payload must
// stay within MaxPayloadBytes. Callers with larger batches split them across
// frames (Writer does this automatically).
func AppendFrame(dst []byte, samples []dataset.TaggedSample) ([]byte, error) {
	return AppendFrameExt(dst, samples, nil)
}

// AppendFrameExt is AppendFrame with an optional trace extension: a non-nil
// ext sets FlagTrace and prefixes the payload with the 16-byte extension. A
// nil ext produces a plain frame, byte-identical to AppendFrame.
func AppendFrameExt(dst []byte, samples []dataset.TaggedSample, ext *Ext) ([]byte, error) {
	var payload []byte
	var flags byte
	if ext != nil {
		payload = appendExt(nil, ext)
		flags = FlagTrace
	}
	payload, err := appendPayload(payload, samples)
	if err != nil {
		return dst, err
	}
	return appendFramed(dst, flags, payload), nil
}

// appendFramed wraps an already-built payload in the frame header.
func appendFramed(dst []byte, flags byte, payload []byte) []byte {
	dst = append(dst, magic0, magic1, Version, flags)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// appendPayload encodes the tag table and sample records.
func appendPayload(dst []byte, samples []dataset.TaggedSample) ([]byte, error) {
	tags := make([]string, 0, 8)
	index := make(map[string]int, 8)
	for i, s := range samples {
		if s.Tag == "" {
			return nil, fmt.Errorf("%w: sample %d has no tag", ErrSample, i)
		}
		if len(s.Tag) > MaxTagBytes {
			return nil, fmt.Errorf("%w: sample %d tag is %d bytes (max %d)",
				ErrSample, i, len(s.Tag), MaxTagBytes)
		}
		if _, ok := index[s.Tag]; !ok {
			if len(tags) == MaxFrameTags {
				return nil, fmt.Errorf("%w: over %d distinct tags in one frame",
					ErrTooLarge, MaxFrameTags)
			}
			index[s.Tag] = len(tags)
			tags = append(tags, s.Tag)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(tags)))
	for _, tag := range tags {
		dst = binary.AppendUvarint(dst, uint64(len(tag)))
		dst = append(dst, tag...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(samples)))
	for _, s := range samples {
		dst = binary.AppendUvarint(dst, uint64(index[s.Tag]))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.TimeS))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.X))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Y))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Z))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Phase))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.RSSI))
		dst = binary.AppendUvarint(dst, zigzag(s.Segment))
		dst = binary.AppendUvarint(dst, zigzag(s.Channel))
	}
	if len(dst) > MaxPayloadBytes {
		return nil, fmt.Errorf("%w: payload %d bytes (max %d)", ErrTooLarge, len(dst), MaxPayloadBytes)
	}
	return dst, nil
}

// DecodeFrame parses one frame from the start of b, appending its samples to
// into. It returns the extended slice and the number of bytes consumed.
// When b holds the beginning of a valid frame but ends early, the error is
// ErrTruncated (wrapped), and a buffering caller may retry with more bytes.
func DecodeFrame(b []byte, into []dataset.TaggedSample) ([]dataset.TaggedSample, int, error) {
	out, _, n, err := DecodeFrameExt(b, into)
	return out, n, err
}

// DecodeFrameExt is DecodeFrame surfacing the trace extension of a flagged
// frame: ext is nil for plain frames. Frames with undefined flag bits are
// rejected with ErrCorrupt, exactly as all non-zero flags were before the
// extension existed.
func DecodeFrameExt(b []byte, into []dataset.TaggedSample) ([]dataset.TaggedSample, *Ext, int, error) {
	if len(b) < 4 {
		return into, nil, 0, fmt.Errorf("%w: %d header bytes", ErrTruncated, len(b))
	}
	if b[0] != magic0 || b[1] != magic1 {
		return into, nil, 0, fmt.Errorf("%w: % x", ErrBadMagic, b[:2])
	}
	if b[2] != Version {
		return into, nil, 0, fmt.Errorf("%w: version %d (want %d)", ErrVersion, b[2], Version)
	}
	flags := b[3]
	if flags&^flagMask != 0 {
		return into, nil, 0, fmt.Errorf("%w: undefined flag bits %#x", ErrCorrupt, flags&^flagMask)
	}
	size, n := binary.Uvarint(b[4:])
	if n == 0 {
		return into, nil, 0, fmt.Errorf("%w: payload length varint", ErrTruncated)
	}
	if n < 0 || size > MaxPayloadBytes {
		return into, nil, 0, fmt.Errorf("%w: payload length %d (max %d)", ErrTooLarge, size, MaxPayloadBytes)
	}
	head := 4 + n
	if uint64(len(b)-head) < size {
		return into, nil, 0, fmt.Errorf("%w: payload %d of %d bytes", ErrTruncated, len(b)-head, size)
	}
	payload := b[head : head+int(size)]
	var ext *Ext
	if flags&FlagTrace != 0 {
		var err error
		if ext, payload, err = decodeExt(payload); err != nil {
			return into, nil, 0, err
		}
	}
	out, err := decodePayload(payload, into)
	if err != nil {
		return into, nil, 0, err
	}
	return out, ext, head + int(size), nil
}

// decodePayload parses the tag table and sample records of one frame.
func decodePayload(p []byte, into []dataset.TaggedSample) ([]dataset.TaggedSample, error) {
	tagCount, p, err := uvarint(p, "tag count")
	if err != nil {
		return into, err
	}
	if tagCount > MaxFrameTags {
		return into, fmt.Errorf("%w: %d tags (max %d)", ErrTooLarge, tagCount, MaxFrameTags)
	}
	// Each tag table entry takes at least 2 bytes (length varint + 1 byte).
	if tagCount > uint64(len(p))/2 {
		return into, fmt.Errorf("%w: tag count %d exceeds payload", ErrCorrupt, tagCount)
	}
	tags := make([]string, tagCount)
	for i := range tags {
		var size uint64
		size, p, err = uvarint(p, "tag length")
		if err != nil {
			return into, err
		}
		if size == 0 || size > MaxTagBytes {
			return into, fmt.Errorf("%w: tag %d length %d (want 1..%d)", ErrCorrupt, i, size, MaxTagBytes)
		}
		if uint64(len(p)) < size {
			return into, fmt.Errorf("%w: tag %d bytes", ErrTruncated, i)
		}
		tags[i] = string(p[:size])
		p = p[size:]
	}
	sampleCount, p, err := uvarint(p, "sample count")
	if err != nil {
		return into, err
	}
	if sampleCount > dataset.MaxIngestSamples {
		return into, fmt.Errorf("%w: %d samples (max %d)", ErrTooLarge, sampleCount, dataset.MaxIngestSamples)
	}
	if sampleCount > uint64(len(p))/minSampleBytes {
		return into, fmt.Errorf("%w: sample count %d exceeds payload", ErrCorrupt, sampleCount)
	}
	if cap(into)-len(into) < int(sampleCount) {
		// Grow geometrically so repeated ReadBatch appends stay amortised
		// O(1) per sample; the fresh capacity is still bounded by the actual
		// bytes decoded so far plus this frame's validated count.
		newCap := max(2*cap(into), len(into)+int(sampleCount))
		grown := make([]dataset.TaggedSample, len(into), newCap)
		copy(grown, into)
		into = grown
	}
	for i := uint64(0); i < sampleCount; i++ {
		var ts dataset.TaggedSample
		var idx uint64
		idx, p, err = uvarint(p, "tag index")
		if err != nil {
			return into, err
		}
		if idx >= tagCount {
			return into, fmt.Errorf("%w: sample %d tag index %d of %d", ErrCorrupt, i, idx, tagCount)
		}
		ts.Tag = tags[idx]
		if len(p) < 6*8 {
			return into, fmt.Errorf("%w: sample %d fields", ErrTruncated, i)
		}
		ts.TimeS = math.Float64frombits(binary.LittleEndian.Uint64(p[0:]))
		ts.X = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		ts.Y = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
		ts.Z = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
		ts.Phase = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
		ts.RSSI = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
		p = p[48:]
		var seg, ch uint64
		seg, p, err = uvarint(p, "segment")
		if err != nil {
			return into, err
		}
		ch, p, err = uvarint(p, "channel")
		if err != nil {
			return into, err
		}
		ts.Segment = unzigzag(seg)
		ts.Channel = unzigzag(ch)
		if err := checkSample(i, ts); err != nil {
			return into, err
		}
		into = append(into, ts)
	}
	if len(p) != 0 {
		return into, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(p))
	}
	return into, nil
}

// checkSample enforces the ingest guarantees JSON gives for free: all floats
// finite, timestamps within the dataset ingest range.
func checkSample(i uint64, ts dataset.TaggedSample) error {
	for _, f := range [...]float64{ts.TimeS, ts.X, ts.Y, ts.Z, ts.Phase, ts.RSSI} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("%w: sample %d has a non-finite field", ErrSample, i)
		}
	}
	if math.Abs(ts.TimeS) > dataset.MaxIngestTimeS {
		return fmt.Errorf("%w: sample %d time %v out of range", ErrSample, i, ts.TimeS)
	}
	return nil
}

// uvarint decodes one varint from p, returning the value and the rest.
func uvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n == 0 {
		return 0, p, fmt.Errorf("%w: %s varint", ErrTruncated, what)
	}
	if n < 0 {
		return 0, p, fmt.Errorf("%w: %s varint overflows", ErrCorrupt, what)
	}
	return v, p[n:], nil
}

// zigzag maps signed ints onto unsigned varint-friendly values.
func zigzag(v int) uint64 { return uint64((int64(v) << 1) ^ (int64(v) >> 63)) }

func unzigzag(u uint64) int { return int(int64(u>>1) ^ -int64(u&1)) }

// Writer frames batches onto an io.Writer, splitting any batch larger than
// batchSize across multiple frames. The zero batchSize means DefaultBatch.
// Writer reuses one scratch buffer across WriteBatch calls; it is not safe
// for concurrent use.
type Writer struct {
	w       io.Writer
	batch   int
	scratch []byte
}

// DefaultBatch is the samples-per-frame split applied by Writer and by
// Write when the caller does not choose one.
const DefaultBatch = 4096

// NewWriter returns a Writer emitting frames of at most batch samples
// (DefaultBatch when batch <= 0).
func NewWriter(w io.Writer, batch int) *Writer {
	if batch <= 0 {
		batch = DefaultBatch
	}
	return &Writer{w: w, batch: batch}
}

// WriteBatch encodes samples as one or more frames and writes them out.
func (wr *Writer) WriteBatch(samples []dataset.TaggedSample) error {
	return wr.WriteBatchExt(samples, nil)
}

// WriteBatchExt is WriteBatch with an optional trace extension: a non-nil ext
// is carried on every emitted frame (a split batch stays one traced unit). A
// nil ext emits plain frames. Send flagged frames only to decoders that
// negotiated FlagTrace support.
func (wr *Writer) WriteBatchExt(samples []dataset.TaggedSample, ext *Ext) error {
	var flags byte
	if ext != nil {
		flags = FlagTrace
	}
	for len(samples) > 0 {
		n := min(len(samples), wr.batch)
		payload := wr.scratch[:0]
		if ext != nil {
			payload = appendExt(payload, ext)
		}
		payload, err := appendPayload(payload, samples[:n])
		if err != nil {
			return err
		}
		wr.scratch = payload
		var head [4 + binary.MaxVarintLen64]byte
		head[0], head[1], head[2], head[3] = magic0, magic1, Version, flags
		hn := 4 + binary.PutUvarint(head[4:], uint64(len(payload)))
		if _, err := wr.w.Write(head[:hn]); err != nil {
			return err
		}
		if _, err := wr.w.Write(payload); err != nil {
			return err
		}
		samples = samples[n:]
	}
	return nil
}

// Reader decodes a stream of concatenated frames.
type Reader struct {
	r       *bufio.Reader
	payload []byte
	ext     *Ext // trace extension of the last frame read, nil when plain
}

// NewReader wraps r for frame-at-a-time reading.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// TraceExt returns the trace extension of the most recently read frame, or
// nil when that frame was plain (or nothing has been read yet).
func (rd *Reader) TraceExt() *Ext { return rd.ext }

// ReadBatch reads the next frame and appends its samples to into, returning
// the extended slice. A clean end of stream returns io.EOF; a stream ending
// inside a frame returns ErrTruncated. A flagged frame's trace extension is
// retained until the next read (TraceExt).
func (rd *Reader) ReadBatch(into []dataset.TaggedSample) ([]dataset.TaggedSample, error) {
	rd.ext = nil
	var head [4]byte
	if _, err := io.ReadFull(rd.r, head[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return into, io.EOF
		}
		return into, err
	}
	if _, err := io.ReadFull(rd.r, head[1:]); err != nil {
		return into, fmt.Errorf("%w: header", ErrTruncated)
	}
	if head[0] != magic0 || head[1] != magic1 {
		return into, fmt.Errorf("%w: % x", ErrBadMagic, head[:2])
	}
	if head[2] != Version {
		return into, fmt.Errorf("%w: version %d (want %d)", ErrVersion, head[2], Version)
	}
	flags := head[3]
	if flags&^flagMask != 0 {
		return into, fmt.Errorf("%w: undefined flag bits %#x", ErrCorrupt, flags&^flagMask)
	}
	size, err := binary.ReadUvarint(rd.r)
	if err != nil {
		return into, fmt.Errorf("%w: payload length varint", ErrTruncated)
	}
	if size > MaxPayloadBytes {
		return into, fmt.Errorf("%w: payload length %d (max %d)", ErrTooLarge, size, MaxPayloadBytes)
	}
	if uint64(cap(rd.payload)) < size {
		rd.payload = make([]byte, size)
	}
	buf := rd.payload[:size]
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return into, fmt.Errorf("%w: payload %d bytes", ErrTruncated, size)
	}
	if flags&FlagTrace != 0 {
		if rd.ext, buf, err = decodeExt(buf); err != nil {
			return into, err
		}
	}
	return decodePayload(buf, into)
}

// DecodeIngest reads a whole stream of frames, mirroring
// dataset.DecodeIngest for the binary format: every returned sample has a
// non-empty tag, finite fields, and an in-range timestamp, and the total is
// bounded by dataset.MaxIngestSamples.
func DecodeIngest(r io.Reader) ([]dataset.TaggedSample, error) {
	out, _, err := DecodeIngestExt(r)
	return out, err
}

// DecodeIngestExt is DecodeIngest surfacing the trace extension: ext is the
// first extension seen in the stream (a router-traced request carries the
// same extension on every frame of the batch), or nil for plain streams.
func DecodeIngestExt(r io.Reader) ([]dataset.TaggedSample, *Ext, error) {
	rd := NewReader(r)
	var out []dataset.TaggedSample
	var ext *Ext
	for {
		next, err := rd.ReadBatch(out)
		if errors.Is(err, io.EOF) {
			return out, ext, nil
		}
		if err != nil {
			return nil, nil, err
		}
		if ext == nil {
			ext = rd.TraceExt()
		}
		if len(next) > dataset.MaxIngestSamples {
			return nil, nil, fmt.Errorf("%w: over %d samples", dataset.ErrIngestTooLarge, dataset.MaxIngestSamples)
		}
		out = next
	}
}

// Codec is the wire implementation of dataset.Codec.
type Codec struct{}

// Name identifies the codec in flags and logs.
func (Codec) Name() string { return "wire" }

// ContentType is the HTTP content type the codec serves.
func (Codec) ContentType() string { return ContentType }

// Decode parses a stream of frames.
func (Codec) Decode(r io.Reader) ([]dataset.TaggedSample, error) { return DecodeIngest(r) }

// Encode frames the samples with the default batch split.
func (Codec) Encode(w io.Writer, samples []dataset.TaggedSample) error {
	return NewWriter(w, 0).WriteBatch(samples)
}
