package wire

import (
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/rfid-lion/lion/internal/dataset"
)

// goldenSamples is a fixed batch covering the interesting encodings: two
// tags (interned once each), negative ints (zigzag), zero fields, and float
// values without short decimal forms.
func goldenSamples() []dataset.TaggedSample {
	return []dataset.TaggedSample{
		{Tag: "T1", TimeS: 0.25, X: 1, Y: -2, Z: 0.5, Phase: math.Pi, RSSI: -61.5, Segment: 0, Channel: 3},
		{Tag: "T2", TimeS: 0.5, X: -0.1, Y: 0, Z: 0, Phase: -1.5, RSSI: 0, Segment: -2, Channel: 0},
		{Tag: "T1", TimeS: 0.75, X: 0.3, Y: 0.8, Z: 0.4, Phase: 2.125, RSSI: -60, Segment: 1, Channel: 7},
	}
}

// goldenPayloadHex is the encoded payload (tag table + sample records) of
// goldenSamples, shared by the plain and traced frame goldens.
const goldenPayloadHex = "02" + // 2 tags
	"025431" + "025432" + // "T1", "T2"
	"03" + // 3 samples
	"00" + "000000000000d03f" + "000000000000f03f" + "00000000000000c0" +
	"000000000000e03f" + "182d4454fb210940" + "0000000000c04ec0" + "00" + "06" +
	"01" + "000000000000e03f" + "9a9999999999b9bf" + "0000000000000000" +
	"0000000000000000" + "000000000000f8bf" + "0000000000000000" + "03" + "00" +
	"00" + "000000000000e83f" + "333333333333d33f" + "9a9999999999e93f" +
	"9a9999999999d93f" + "0000000000000140" + "0000000000004ec0" + "02" + "0e"

// goldenFrameHex freezes the version-1 frame layout byte for byte. Any
// change to the header, varint placement, field order, or float encoding
// fails here until the golden (and DESIGN.md section 12) is updated
// deliberately — the wire format is a cross-process compatibility contract.
const goldenFrameHex = "4c570100a101" + // 'L' 'W' version=1 flags=0 payload=161 (varint a1 01)
	goldenPayloadHex

// goldenExt is the fixed trace extension used by the traced golden.
var goldenExt = Ext{TraceID: 0x0123456789abcdef, RouterRecvUnixNano: 1_000_000_000_000_000_000}

// goldenTracedFrameHex freezes the FlagTrace layout: flags=0x01, the payload
// length grows by the fixed 16-byte extension (161+16=177, varint b1 01), and
// the extension (trace id then router receive nanos, both little-endian)
// precedes the unchanged tag table.
const goldenTracedFrameHex = "4c570101b101" + // 'L' 'W' version=1 flags=1 payload=177
	"efcdab8967452301" + // trace id 0x0123456789abcdef LE
	"000064a7b3b6e00d" + // router recv 1e18 ns LE
	goldenPayloadHex

func TestWireGolden(t *testing.T) {
	b, err := AppendFrame(nil, goldenSamples())
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(b); got != goldenFrameHex {
		t.Errorf("frame layout changed:\n got  %s\n want %s", got, goldenFrameHex)
	}
	// The golden bytes decode back to the exact input.
	raw, err := hex.DecodeString(goldenFrameHex)
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := DecodeFrame(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d of %d bytes", n, len(raw))
	}
	if !reflect.DeepEqual(out, goldenSamples()) {
		t.Errorf("golden decode mismatch:\n got  %+v\n want %+v", out, goldenSamples())
	}
	// A plain frame decodes with a nil extension through the Ext API too.
	_, ext, _, err := DecodeFrameExt(raw, nil)
	if err != nil || ext != nil {
		t.Errorf("plain frame ext = %+v, err = %v, want nil/nil", ext, err)
	}
}

func TestWireTracedGolden(t *testing.T) {
	ext := goldenExt
	b, err := AppendFrameExt(nil, goldenSamples(), &ext)
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(b); got != goldenTracedFrameHex {
		t.Errorf("traced frame layout changed:\n got  %s\n want %s", got, goldenTracedFrameHex)
	}
	raw, err := hex.DecodeString(goldenTracedFrameHex)
	if err != nil {
		t.Fatal(err)
	}
	out, gotExt, n, err := DecodeFrameExt(raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(raw) {
		t.Errorf("consumed %d of %d bytes", n, len(raw))
	}
	if gotExt == nil || *gotExt != goldenExt {
		t.Errorf("decoded ext = %+v, want %+v", gotExt, goldenExt)
	}
	if !reflect.DeepEqual(out, goldenSamples()) {
		t.Errorf("traced golden decode mismatch:\n got  %+v\n want %+v", out, goldenSamples())
	}
	// DecodeFrame (the ext-blind entry point) still decodes the samples.
	out2, n2, err := DecodeFrame(raw, nil)
	if err != nil || n2 != len(raw) || !reflect.DeepEqual(out2, goldenSamples()) {
		t.Errorf("DecodeFrame on traced frame: n=%d err=%v", n2, err)
	}
}

// TestWriterReaderTraceExt proves the stream path carries the extension on
// every frame of a split batch, that TraceExt resets on a following plain
// frame, and that DecodeIngestExt surfaces the first extension seen.
func TestWriterReaderTraceExt(t *testing.T) {
	var in []dataset.TaggedSample
	for i := 0; i < 300; i++ {
		in = append(in, dataset.TaggedSample{Tag: "T1", TimeS: float64(i) * 0.01, Phase: 1})
	}
	var buf bytes.Buffer
	wr := NewWriter(&buf, 128) // forces a 3-frame split
	ext := goldenExt
	if err := wr.WriteBatchExt(in, &ext); err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteBatch(goldenSamples()); err != nil { // plain tail frame
		t.Fatal(err)
	}

	rd := NewReader(bytes.NewReader(buf.Bytes()))
	var out []dataset.TaggedSample
	frames := 0
	for {
		next, err := rd.ReadBatch(out[:0])
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		if frames <= 3 {
			if got := rd.TraceExt(); got == nil || *got != goldenExt {
				t.Fatalf("frame %d ext = %+v, want %+v", frames, rd.TraceExt(), goldenExt)
			}
		} else if rd.TraceExt() != nil {
			t.Fatalf("plain frame %d carries ext %+v", frames, rd.TraceExt())
		}
		out = next
	}
	if frames != 4 {
		t.Fatalf("read %d frames, want 4", frames)
	}

	samples, gotExt, err := DecodeIngestExt(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotExt == nil || *gotExt != goldenExt {
		t.Errorf("DecodeIngestExt ext = %+v, want %+v", gotExt, goldenExt)
	}
	if len(samples) != len(in)+len(goldenSamples()) {
		t.Errorf("decoded %d samples, want %d", len(samples), len(in)+len(goldenSamples()))
	}
}

func TestWireRoundTrip(t *testing.T) {
	in := goldenSamples()
	// Values that must survive bit-exactly, including denormals and extremes.
	in = append(in, dataset.TaggedSample{
		Tag: "edge", TimeS: -dataset.MaxIngestTimeS, X: math.SmallestNonzeroFloat64,
		Y: -math.MaxFloat64, Z: 1e-300, Phase: -0.0, RSSI: 1e308,
		Segment: math.MaxInt32, Channel: -math.MaxInt32,
	})
	b, err := AppendFrame(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, n, err := DecodeFrame(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(b) {
		t.Errorf("consumed %d of %d bytes", n, len(b))
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d samples, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i].Tag != out[i].Tag || in[i].Segment != out[i].Segment || in[i].Channel != out[i].Channel {
			t.Errorf("sample %d: got %+v want %+v", i, out[i], in[i])
		}
		pairs := [][2]float64{
			{in[i].TimeS, out[i].TimeS}, {in[i].X, out[i].X}, {in[i].Y, out[i].Y},
			{in[i].Z, out[i].Z}, {in[i].Phase, out[i].Phase}, {in[i].RSSI, out[i].RSSI},
		}
		for j, p := range pairs {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				t.Errorf("sample %d field %d: bits %x != %x", i, j, math.Float64bits(p[1]), math.Float64bits(p[0]))
			}
		}
	}
}

func TestWriterReaderStream(t *testing.T) {
	var in []dataset.TaggedSample
	for i := 0; i < 1000; i++ {
		in = append(in, dataset.TaggedSample{
			Tag: "T" + string(rune('A'+i%7)), TimeS: float64(i) * 0.01,
			X: float64(i) * 0.001, Phase: float64(i%628) / 100, Channel: i % 16,
		})
	}
	var buf bytes.Buffer
	// A small batch size forces the split path: 1000 samples over 8 frames.
	if err := NewWriter(&buf, 128).WriteBatch(in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeIngest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("stream round trip mismatch (%d in, %d out)", len(in), len(out))
	}
}

func TestCodecImplementsDatasetCodec(t *testing.T) {
	var c dataset.Codec = Codec{}
	if c.Name() != "wire" || c.ContentType() != ContentType {
		t.Errorf("codec identity: %q %q", c.Name(), c.ContentType())
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf, goldenSamples()); err != nil {
		t.Fatal(err)
	}
	out, err := c.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, goldenSamples()) {
		t.Error("codec round trip mismatch")
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good, err := AppendFrame(nil, goldenSamples())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short header", good[:3], ErrTruncated},
		{"bad magic", append([]byte("XY"), good[2:]...), ErrBadMagic},
		{"future version", mutate(good, 2, 9), ErrVersion},
		{"undefined flag bits", mutate(good, 3, 0x80), ErrCorrupt},
		{"undefined flag alongside trace flag", mutate(good, 3, 0x81), ErrCorrupt},
		{"flagged frame with payload shorter than ext", flaggedShortExt(), ErrCorrupt},
		{"truncated payload", good[:len(good)-5], ErrTruncated},
		{"oversized length", appendUvarintFrame(MaxPayloadBytes + 1), ErrTooLarge},
		{"trailing garbage inside payload", growPayload(good), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeFrame(tc.b, nil); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// mutate returns a copy of b with b[i] = v.
func mutate(b []byte, i int, v byte) []byte {
	out := bytes.Clone(b)
	out[i] = v
	return out
}

// appendUvarintFrame builds a header claiming the given payload size.
func appendUvarintFrame(size uint64) []byte {
	b := []byte{magic0, magic1, Version, 0}
	for size >= 0x80 {
		b = append(b, byte(size)|0x80)
		size >>= 7
	}
	return append(b, byte(size))
}

// growPayload inflates the declared payload length by one and appends a
// stray byte, producing trailing bytes after the last sample record.
func growPayload(frame []byte) []byte {
	samples, _, err := DecodeFrame(frame, nil)
	if err != nil {
		panic(err)
	}
	payload, err := appendPayload(nil, samples)
	if err != nil {
		panic(err)
	}
	payload = append(payload, 0x00)
	return appendFramed(nil, 0, payload)
}

// flaggedShortExt builds a frame with FlagTrace set whose whole payload is
// smaller than the 16-byte trace extension.
func flaggedShortExt() []byte {
	return appendFramed(nil, FlagTrace, []byte{0x01, 0x02, 0x03})
}

func TestDecodeRejectsNonFinite(t *testing.T) {
	// Encode a valid frame, then splice NaN bits into the phase field of the
	// first sample. The decoder must reject it: JSON cannot carry NaN, and
	// the binary path keeps that guarantee.
	samples := []dataset.TaggedSample{{Tag: "T", TimeS: 1, Phase: 2.5}}
	b, err := AppendFrame(nil, samples)
	if err != nil {
		t.Fatal(err)
	}
	nan := math.Float64bits(math.NaN())
	idx := bytes.Index(b, le64(math.Float64bits(2.5)))
	if idx < 0 {
		t.Fatal("phase bits not found")
	}
	copy(b[idx:], le64(nan))
	if _, _, err := DecodeFrame(b, nil); !errors.Is(err, ErrSample) {
		t.Errorf("NaN phase: err = %v, want ErrSample", err)
	}

	// Same for an out-of-range timestamp.
	b2, err := AppendFrame(nil, samples)
	if err != nil {
		t.Fatal(err)
	}
	idx = bytes.Index(b2, le64(math.Float64bits(1)))
	if idx < 0 {
		t.Fatal("time bits not found")
	}
	copy(b2[idx:], le64(math.Float64bits(2*dataset.MaxIngestTimeS)))
	if _, _, err := DecodeFrame(b2, nil); !errors.Is(err, ErrSample) {
		t.Errorf("huge timestamp: err = %v, want ErrSample", err)
	}
}

func le64(bits uint64) []byte {
	var b [8]byte
	for i := range b {
		b[i] = byte(bits >> (8 * i))
	}
	return b[:]
}

func TestAppendFrameRejectsBadSamples(t *testing.T) {
	if _, err := AppendFrame(nil, []dataset.TaggedSample{{Tag: ""}}); !errors.Is(err, ErrSample) {
		t.Errorf("empty tag: %v", err)
	}
	long := strings.Repeat("x", MaxTagBytes+1)
	if _, err := AppendFrame(nil, []dataset.TaggedSample{{Tag: long}}); !errors.Is(err, ErrSample) {
		t.Errorf("oversized tag: %v", err)
	}
}

func TestReaderCleanAndDirtyEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := NewWriter(&buf, 0).WriteBatch(goldenSamples()); err != nil {
		t.Fatal(err)
	}
	full := bytes.Clone(buf.Bytes())

	rd := NewReader(bytes.NewReader(full))
	if _, err := rd.ReadBatch(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadBatch(nil); !errors.Is(err, io.EOF) {
		t.Errorf("clean end: err = %v, want io.EOF", err)
	}

	rd = NewReader(bytes.NewReader(full[:len(full)-3]))
	if _, err := rd.ReadBatch(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("mid-frame end: err = %v, want ErrTruncated", err)
	}
}

func TestDecodeIngestTotalBound(t *testing.T) {
	// Many frames whose total crosses MaxIngestSamples must be refused with
	// the dataset sentinel, mirroring the NDJSON path.
	one := make([]dataset.TaggedSample, 1<<12)
	for i := range one {
		one[i] = dataset.TaggedSample{Tag: "T", TimeS: float64(i)}
	}
	frame, err := AppendFrame(nil, one)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for i := 0; i <= dataset.MaxIngestSamples/len(one); i++ {
		buf.Write(frame)
	}
	if _, err := DecodeIngest(&buf); !errors.Is(err, dataset.ErrIngestTooLarge) {
		t.Errorf("err = %v, want ErrIngestTooLarge", err)
	}
}
