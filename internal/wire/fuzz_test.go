package wire

import (
	"bytes"
	"math"
	"testing"

	"github.com/rfid-lion/lion/internal/dataset"
)

// FuzzWireDecode asserts the decoder's safety contract on arbitrary bytes:
// no panic, no over-allocation beyond what the input size justifies, and —
// when a frame does decode — every sample upholds the ingest guarantees
// (non-empty tag, finite floats, in-range timestamp) and re-encodes to a
// byte-identical frame.
func FuzzWireDecode(f *testing.F) {
	// Seeds: a valid frame, each rejection class, and varint edge shapes.
	valid, err := AppendFrame(nil, goldenSamples())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{magic0})
	f.Add([]byte{magic0, magic1, Version, 0})
	f.Add([]byte{magic0, magic1, Version + 1, 0, 0})
	f.Add([]byte{magic0, magic1, Version, 0xff, 0})
	f.Add(valid[:len(valid)-7])
	f.Add(appendUvarintFrame(MaxPayloadBytes + 1))
	f.Add(appendUvarintFrame(math.MaxUint64))
	// Payload length claims 5 bytes, carries a huge sample count varint.
	f.Add(append([]byte{magic0, magic1, Version, 0, 5}, 0x80, 0x80, 0x80, 0x80, 0x01))
	// Two concatenated valid frames exercise the streaming reader.
	f.Add(append(bytes.Clone(valid), valid...))
	// Trace-extension seeds: a valid flagged frame, the flagged frame
	// truncated at every byte of the 16-byte extension (header is 4 magic
	// bytes + a 2-byte payload-length varint here), a flagged frame whose
	// payload is shorter than the extension, and undefined flag bits.
	ext := Ext{TraceID: 0x0123456789abcdef, RouterRecvUnixNano: 1 << 40}
	traced, err := AppendFrameExt(nil, goldenSamples(), &ext)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(traced)
	headLen := 4
	for traced[headLen]&0x80 != 0 {
		headLen++
	}
	headLen++ // past the final payload-length varint byte
	for i := 0; i <= extBytes; i++ {
		f.Add(bytes.Clone(traced[:headLen+i]))
	}
	f.Add(appendFramed(nil, FlagTrace, []byte{1, 2, 3}))
	f.Add(mutate(valid, 3, 0x80))
	f.Add(mutate(traced, 3, 0x81))
	// A traced frame followed by a plain frame exercises TraceExt reset.
	f.Add(append(bytes.Clone(traced), valid...))

	f.Fuzz(func(t *testing.T, b []byte) {
		samples, fext, n, err := DecodeFrameExt(b, nil)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v with %d bytes consumed", err, n)
			}
			return
		}
		if fext != nil && b[3]&FlagTrace == 0 {
			t.Fatalf("unflagged frame produced extension %+v", fext)
		}
		if fext == nil && b[3]&FlagTrace != 0 {
			t.Fatal("flagged frame decoded without an extension")
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// A successful decode cannot have materialised more samples than the
		// consumed bytes can encode: each sample takes at least minSampleBytes.
		if len(samples)*minSampleBytes > n {
			t.Fatalf("%d samples out of %d bytes — over-allocation", len(samples), n)
		}
		for i, s := range samples {
			if s.Tag == "" {
				t.Fatalf("sample %d: empty tag", i)
			}
			if math.Abs(s.TimeS) > dataset.MaxIngestTimeS {
				t.Fatalf("sample %d: time %v out of range", i, s.TimeS)
			}
			for _, v := range [...]float64{s.TimeS, s.X, s.Y, s.Z, s.Phase, s.RSSI} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("sample %d: non-finite field", i)
				}
			}
		}
		// Decoded samples re-encode to a decodable frame carrying the same
		// values (the encoder canonicalises varint widths, so compare the
		// decoded forms, not the raw bytes).
		re, err := AppendFrame(nil, samples)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, m, err := DecodeFrame(re, nil)
		if err != nil || m != len(re) {
			t.Fatalf("re-decode: %v (consumed %d of %d)", err, m, len(re))
		}
		if len(back) != len(samples) {
			t.Fatalf("re-decode count %d, want %d", len(back), len(samples))
		}
		for i := range back {
			if back[i] != samples[i] {
				t.Fatalf("sample %d changed across re-encode:\n got  %+v\n want %+v",
					i, back[i], samples[i])
			}
		}

		// The streaming reader agrees with the frame decoder on the same prefix.
		rd := NewReader(bytes.NewReader(b))
		streamed, serr := rd.ReadBatch(nil)
		if serr != nil {
			t.Fatalf("Reader fails where DecodeFrame succeeded: %v", serr)
		}
		if len(streamed) != len(samples) {
			t.Fatalf("Reader decoded %d samples, DecodeFrame %d", len(streamed), len(samples))
		}
		rext := rd.TraceExt()
		if (rext == nil) != (fext == nil) || (rext != nil && *rext != *fext) {
			t.Fatalf("Reader ext %+v disagrees with DecodeFrameExt %+v", rext, fext)
		}
	})
}
