package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event kinds emitted by the tracer.
const (
	KindSpanStart = "span_start"
	KindSpanEnd   = "span_end"
	KindIRLSIter  = "irls_iter"
	KindCandidate = "candidate"
	KindNote      = "note"
)

// Event is one solve-trace record. Events serialise to NDJSON with monotonic
// microsecond timestamps relative to the tracer's creation; fields irrelevant
// to an event's kind are omitted.
type Event struct {
	TMicros   int64  `json:"t_us"`
	Kind      string `json:"event"`
	Span      string `json:"span,omitempty"`
	DurMicros int64  `json:"duration_us,omitempty"`

	// irls_iter fields (Eqs. 13–16): Iter counts from 1; Residual is the
	// 2-norm of the residual vector entering the re-weighting; FloorHits is
	// the number of rows whose Gaussian weight fell below core.WeightFloor
	// (effectively discarded outliers); Condition is the solver's condition
	// estimate of the unweighted system.
	Iter      int     `json:"iter,omitempty"`
	Residual  float64 `json:"residual_norm,omitempty"`
	FloorHits int     `json:"weight_floor_hits,omitempty"`
	Condition float64 `json:"condition_estimate,omitempty"`

	// candidate fields (adaptive sweep, Sec. IV-C-1): the scanned range and
	// pairing interval plus the weighted mean residual the selection rule
	// ranks by.
	ScanRange float64 `json:"scan_range_m,omitempty"`
	Interval  float64 `json:"interval_m,omitempty"`
	WResidual float64 `json:"weighted_residual,omitempty"`

	// Detail carries free-form annotations (note events); Err carries a
	// failed candidate's error text.
	Detail string `json:"detail,omitempty"`
	Err    string `json:"error,omitempty"`
}

// Tracer collects solve-trace events. The nil Tracer is the disabled state:
// every method is a no-op costing one nil check and zero allocations, so the
// hot path can call through unconditionally. Non-nil tracers are safe for
// concurrent use (adaptive sweeps emit from pool workers).
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
}

// NewTracer returns an enabled tracer; timestamps are monotonic microseconds
// since this call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// nopEnd is returned by Span on a nil tracer; a package-level value keeps the
// disabled path allocation-free.
var nopEnd = func() {}

func (t *Tracer) emit(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

func (t *Tracer) since() int64 {
	return time.Since(t.start).Microseconds()
}

// Span emits a span_start event and returns the function that emits the
// matching span_end (with the span's duration). Usage:
//
//	defer tr.Span("solve")()
func (t *Tracer) Span(span string) func() {
	if t == nil {
		return nopEnd
	}
	begin := t.since()
	t.emit(Event{TMicros: begin, Kind: KindSpanStart, Span: span})
	return func() {
		end := t.since()
		t.emit(Event{TMicros: end, Kind: KindSpanEnd, Span: span, DurMicros: end - begin})
	}
}

// SpanMark is the handle-based counterpart of Span: a value-type span handle
// whose End emits the matching span_end. Unlike Span, which allocates a
// closure per call, SpanAt/End moves only a three-word struct, so hot-path
// stages (the engine dispatch path) can bracket work at zero heap cost even
// when the tracer is enabled — and at literally zero cost when it is nil.
type SpanMark struct {
	t     *Tracer
	span  string
	begin int64
}

// SpanAt emits a span_start event and returns the mark whose End emits the
// matching span_end. Usage on hot paths, where Span's closure would allocate:
//
//	mark := tr.SpanAt("window_solve")
//	... work ...
//	mark.End()
//
// A nil tracer returns the zero mark; both calls are then no-ops.
func (t *Tracer) SpanAt(span string) SpanMark {
	if t == nil {
		return SpanMark{}
	}
	begin := t.since()
	t.emit(Event{TMicros: begin, Kind: KindSpanStart, Span: span})
	return SpanMark{t: t, span: span, begin: begin}
}

// End emits the span_end event for the mark's span. Safe on the zero mark.
func (m SpanMark) End() {
	if m.t == nil {
		return
	}
	end := m.t.since()
	m.t.emit(Event{TMicros: end, Kind: KindSpanEnd, Span: m.span, DurMicros: end - m.begin})
}

// IRLSIter records one iteration of the re-weighted least-squares refinement.
func (t *Tracer) IRLSIter(span string, iter int, residualNorm float64, floorHits int, condition float64) {
	if t == nil {
		return
	}
	t.emit(Event{
		TMicros:   t.since(),
		Kind:      KindIRLSIter,
		Span:      span,
		Iter:      iter,
		Residual:  residualNorm,
		FloorHits: floorHits,
		Condition: condition,
	})
}

// Candidate records one evaluated (range, interval) cell of an adaptive
// sweep with its weighted mean residual, or the error that disqualified it.
func (t *Tracer) Candidate(span string, scanRange, interval, weightedResidual float64, err error) {
	if t == nil {
		return
	}
	e := Event{
		TMicros:   t.since(),
		Kind:      KindCandidate,
		Span:      span,
		ScanRange: scanRange,
		Interval:  interval,
		WResidual: weightedResidual,
	}
	if err != nil {
		e.Err = err.Error()
	}
	t.emit(e)
}

// Note records a free-form annotation.
func (t *Tracer) Note(span, detail string) {
	if t == nil {
		return
	}
	t.emit(Event{TMicros: t.since(), Kind: KindNote, Span: span, Detail: detail})
}

// Events returns a copy of the recorded events in emission order, or nil for
// a nil tracer.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteNDJSON writes the recorded events as one JSON object per line.
func (t *Tracer) WriteNDJSON(w io.Writer) error {
	return WriteEventsNDJSON(w, t.Events())
}

// WriteEventsNDJSON writes events as NDJSON lines.
func WriteEventsNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}
