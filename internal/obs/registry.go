package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/rfid-lion/lion/internal/stats"
)

// metricNameRE is the Prometheus metric-name grammar. The stricter project
// rule — every name starts with lion_ and uses only lowercase and
// underscores — is enforced at build time by tools/metriclint.
var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// metric is one named exposition unit.
type metric interface {
	describe() (name, help, typ string)
	expose(w io.Writer)
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent: asking for an existing name
// returns the existing metric when the kind matches and panics on a kind
// mismatch (a programming error, like prometheus.MustRegister).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// register stores m under its name, or returns the already-registered metric
// of the same name after checking the kind matches.
func (r *Registry) register(name string, m metric) metric {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[name]; ok {
		_, _, oldTyp := old.describe()
		_, _, newTyp := m.describe()
		if oldTyp != newTyp {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, newTyp, oldTyp))
		}
		return old
	}
	r.metrics[name] = m
	return m
}

// Counter returns the monotonically increasing counter with this name,
// creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// CounterVec returns a counter family keyed by one label, creating it on
// first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, &CounterVec{name: name, help: help, label: label}).(*CounterVec)
}

// Gauge returns the settable gauge with this name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is sampled from fn at exposition
// time. Re-registering the same name keeps the first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

// GaugeVec returns a gauge family keyed by one label, creating it on first
// use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return r.register(name, &GaugeVec{name: name, help: help, label: label}).(*GaugeVec)
}

// Histogram returns the histogram with this name, creating it on first use
// with the given bucket upper bounds (nil means DefBuckets). Besides the
// cumulative Prometheus buckets it keeps a bounded window of recent raw
// observations for quantile queries.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, newHistogram(name, help, buckets)).(*Histogram)
}

// FindHistogram returns the registered histogram with this name, if any —
// read access for in-process consumers (the liond dashboard) without
// re-registering.
func (r *Registry) FindHistogram(name string) (*Histogram, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.metrics[name].(*Histogram)
	return h, ok
}

// Names returns the registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// WritePrometheus renders every metric in the text exposition format
// (version 0.0.4), sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ordered := make([]metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ordered = append(ordered, m)
	}
	r.mu.Unlock()
	sort.Slice(ordered, func(i, j int) bool {
		ni, _, _ := ordered[i].describe()
		nj, _, _ := ordered[j].describe()
		return ni < nj
	})
	for _, m := range ordered {
		name, help, typ := m.describe()
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		m.expose(w)
	}
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) describe() (string, string, string) { return c.name, c.help, "counter" }

func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

// CounterVec is a family of counters distinguished by the value of a single
// label (e.g. lion_stream_dropped_total{reason=...}).
type CounterVec struct {
	mu       sync.Mutex
	children map[string]*Counter
	name     string
	help     string
	label    string
}

// With returns the child counter for the label value, creating it on first
// use. Hot paths should call With once up front and keep the child.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = make(map[string]*Counter)
	}
	c, ok := v.children[value]
	if !ok {
		c = &Counter{name: v.name}
		v.children[value] = c
	}
	return c
}

func (v *CounterVec) describe() (string, string, string) { return v.name, v.help, "counter" }

func (v *CounterVec) expose(w io.Writer) {
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for value := range v.children {
		values = append(values, value)
	}
	sort.Strings(values)
	children := make([]*Counter, len(values))
	for i, value := range values {
		children[i] = v.children[value]
	}
	v.mu.Unlock()
	for i, value := range values {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, value, children[i].Value())
	}
}

// GaugeVec is a family of gauges distinguished by the value of a single
// label (e.g. lion_health_drift_lambda{antenna=...}). Label values must come
// from a bounded set — configuration, rule names — never from unbounded
// request inputs; tools/metriclint flags dynamic values without a
// metriclint:bounded marker.
type GaugeVec struct {
	mu       sync.Mutex
	children map[string]*Gauge
	name     string
	help     string
	label    string
}

// With returns the child gauge for the label value, creating it on first
// use. Hot paths should call With once up front and keep the child.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = make(map[string]*Gauge)
	}
	g, ok := v.children[value]
	if !ok {
		g = &Gauge{name: v.name}
		v.children[value] = g
	}
	return g
}

func (v *GaugeVec) describe() (string, string, string) { return v.name, v.help, "gauge" }

func (v *GaugeVec) expose(w io.Writer) {
	v.mu.Lock()
	values := make([]string, 0, len(v.children))
	for value := range v.children {
		values = append(values, value)
	}
	sort.Strings(values)
	children := make([]*Gauge, len(values))
	for i, value := range values {
		children[i] = v.children[value]
	}
	v.mu.Unlock()
	for i, value := range values {
		fmt.Fprintf(w, "%s{%s=%q} %s\n", v.name, v.label, value, formatFloat(children[i].Value()))
	}
}

// Gauge is a value that can go up and down, stored as atomic float bits.
type Gauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) describe() (string, string, string) { return g.name, g.help, "gauge" }

func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// gaugeFunc samples its value at exposition time.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

func (g *gaugeFunc) describe() (string, string, string) { return g.name, g.help, "gauge" }

func (g *gaugeFunc) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// DefBuckets are the default histogram buckets, spanning 10 µs to 10 s —
// sized for solve latencies (a 256-sample window solves in ~100 µs).
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// quantileWindow bounds the recent raw observations kept per histogram for
// quantile queries.
const quantileWindow = 1024

// Histogram counts observations into cumulative buckets (exact Prometheus
// histogram exposition) and additionally retains a bounded window of recent
// raw values so callers can read interpolated quantiles without a scrape.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []uint64  // per-bucket (non-cumulative) counts; last is +Inf
	sum    float64
	count  uint64
	window *stats.Recorder
	// exemplars holds the latest sampled observation per bucket (parallel to
	// counts), allocated lazily on the first ObserveExemplar with a sampled
	// context so exemplar-free histograms pay nothing.
	exemplars []exemplar
	name      string
	help      string
}

// exemplar is the last sampled observation that landed in one bucket,
// rendered as an OpenMetrics-style `# {trace_id="..."} value` annotation.
// Storing the raw trace id (not a formatted string) keeps ObserveExemplar
// allocation-free after the lazy slice exists.
type exemplar struct {
	traceID uint64
	value   float64
	valid   bool
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	return &Histogram{
		upper:  upper,
		counts: make([]uint64, len(upper)+1),
		window: stats.NewRecorder(quantileWindow),
		name:   name,
		help:   help,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.window.Add(v)
}

// ObserveExemplar records one value and, when the context is sampled,
// remembers it as the bucket's exemplar: the exposition then annotates that
// bucket with the trace id, linking the metric to its end-to-end trace. With
// an unsampled context this is exactly Observe — no exemplar state is touched
// and nothing is allocated.
func (h *Histogram) ObserveExemplar(v float64, tc TraceContext) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.window.Add(v)
	if !tc.Sampled {
		return
	}
	if h.exemplars == nil {
		h.exemplars = make([]exemplar, len(h.counts))
	}
	h.exemplars[i] = exemplar{traceID: tc.ID, value: v, valid: true}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the interpolated p-th percentile (p in [0, 100]) over the
// retained window of recent observations. ok is false when nothing has been
// observed yet.
func (h *Histogram) Quantile(p float64) (v float64, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.window.Percentile(p)
}

// WindowMean returns the mean of the retained window, or 0 when empty.
func (h *Histogram) WindowMean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.window.Mean()
}

// WindowSnapshot returns a copy of the retained recent observations in
// insertion order (oldest first), or nil when empty — the raw series behind
// Quantile, which dashboards render as sparklines.
func (h *Histogram) WindowSnapshot() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.window.Snapshot()
}

func (h *Histogram) describe() (string, string, string) { return h.name, h.help, "histogram" }

func (h *Histogram) expose(w io.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", h.name, formatFloat(ub), cum, h.exemplarSuffix(i))
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", h.name, h.count, h.exemplarSuffix(len(h.counts)-1))
	fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count)
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for one bucket,
// or "" when the bucket has none — exemplar-free expositions are unchanged
// byte for byte. Caller holds h.mu.
func (h *Histogram) exemplarSuffix(i int) string {
	if h.exemplars == nil || !h.exemplars[i].valid {
		return ""
	}
	ex := h.exemplars[i]
	return fmt.Sprintf(" # {trace_id=%q} %s", TraceIDString(ex.traceID), formatFloat(ex.value))
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
