// Pipeline tracing: propagatable trace contexts and the bounded span log.
//
// The solve tracer (trace.go) records what happens *inside* one window solve;
// the types here record where a sample batch spent its time *between* pipeline
// stages — router ingest, forward queue, wire transfer, shard decode, engine
// queue, solve, publish. A deterministic 1-in-N sampler stamps selected ingest
// batches with a TraceContext; every stage that touches a sampled batch
// appends one PipeSpan to its process-local SpanLog, and lionroute reassembles
// the per-process logs into one end-to-end trace by trace id.
//
// The untraced path is free by construction: an unsampled TraceContext is two
// zero words, Record on an unsampled context returns before taking the lock,
// and a nil *Sampler or *SpanLog disables the layer entirely — all without a
// single heap allocation (TestPipelineUntracedZeroAllocs).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext identifies one sampled ingest batch across processes. The zero
// value is the unsampled state and costs nothing to carry.
type TraceContext struct {
	// ID is the deterministic trace id, meaningful only when Sampled.
	ID uint64
	// Sampled gates every tracing side effect on the pipeline.
	Sampled bool
}

// TraceIDString renders a trace id the way it appears in span exports and
// exemplars: 16 lowercase hex digits.
func TraceIDString(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// ParseTraceID parses the 16-hex-digit form accepted from URLs.
func ParseTraceID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("obs: bad trace id %q: %w", s, err)
	}
	return id, nil
}

// Sampler selects one in every N ingest batches for pipeline tracing and
// assigns it a deterministic trace id derived from (seed, batch ordinal) —
// no clock or RNG on the hot path, and a fixed seed replays the same ids.
// A nil Sampler never samples; all methods are safe for concurrent use.
type Sampler struct {
	n    uint64
	seed uint64
	ctr  atomic.Uint64
}

// NewSampler returns a sampler tracing one in every n batches (the first,
// then every n-th). n <= 0 disables sampling: Next always returns the
// unsampled context.
func NewSampler(n int, seed uint64) *Sampler {
	if n <= 0 {
		return &Sampler{}
	}
	return &Sampler{n: uint64(n), seed: seed}
}

// Next advances the batch counter and returns the trace decision for this
// batch. Zero allocations on both outcomes.
func (s *Sampler) Next() TraceContext {
	if s == nil || s.n == 0 {
		return TraceContext{}
	}
	k := s.ctr.Add(1) - 1
	if k%s.n != 0 {
		return TraceContext{}
	}
	id := splitmix64(s.seed + k)
	if id == 0 {
		id = 1 // keep 0 free as the "no trace" sentinel in URLs and spans
	}
	return TraceContext{ID: id, Sampled: true}
}

// splitmix64 is the SplitMix64 finalizer: a bijective mixer whose outputs are
// uniformly spread even for sequential inputs — exactly what (seed + ordinal)
// produces.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PipeSpan is one pipeline stage crossing of a sampled batch. Unlike the
// solve tracer's Event (relative microseconds within one solve), spans carry
// absolute wall-clock nanoseconds so spans from different processes order on
// a common axis.
type PipeSpan struct {
	// TraceID links the span to its trace.
	TraceID uint64
	// Service names the recording process ("lionroute", "liond").
	Service string
	// Stage names the pipeline stage ("ingest_decode", "queue_wait", ...).
	Stage string
	// Tag scopes per-tag stages (solve, publish); empty for batch stages.
	Tag string
	// Start is the stage start, unix nanoseconds.
	Start int64
	// Dur is the stage duration in nanoseconds.
	Dur int64
}

// pipeSpanJSON is the frozen export schema of one span.
type pipeSpanJSON struct {
	TraceID string `json:"trace_id"`
	Service string `json:"service"`
	Stage   string `json:"stage"`
	Tag     string `json:"tag,omitempty"`
	StartNS int64  `json:"start_unix_ns"`
	DurNS   int64  `json:"duration_ns"`
}

// MarshalJSON renders the span with the trace id in its canonical hex form.
func (s PipeSpan) MarshalJSON() ([]byte, error) {
	return json.Marshal(pipeSpanJSON{
		TraceID: TraceIDString(s.TraceID),
		Service: s.Service,
		Stage:   s.Stage,
		Tag:     s.Tag,
		StartNS: s.Start,
		DurNS:   s.Dur,
	})
}

// UnmarshalJSON accepts the export form back, so lionroute can merge span
// logs fetched from shards.
func (s *PipeSpan) UnmarshalJSON(b []byte) error {
	var j pipeSpanJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	id, err := ParseTraceID(j.TraceID)
	if err != nil {
		return err
	}
	*s = PipeSpan{TraceID: id, Service: j.Service, Stage: j.Stage, Tag: j.Tag,
		Start: j.StartNS, Dur: j.DurNS}
	return nil
}

// SpanLog is a bounded in-memory ring of pipeline spans: old spans are
// overwritten once the capacity is reached, so a long-lived daemon holds a
// recent window rather than an unbounded history. A nil SpanLog is the
// disabled state — Record is a no-op — and recording an unsampled context
// returns before taking the lock; both paths are allocation-free.
type SpanLog struct {
	mu      sync.Mutex
	service string
	ring    []PipeSpan
	next    int
	n       int
	total   uint64
}

// DefaultSpanLogCap bounds a span log when no capacity is given: at ~6 spans
// per sampled batch this retains the last few hundred traces.
const DefaultSpanLogCap = 4096

// NewSpanLog returns a log for the named service keeping the most recent
// capacity spans (DefaultSpanLogCap when capacity <= 0).
func NewSpanLog(service string, capacity int) *SpanLog {
	if capacity <= 0 {
		capacity = DefaultSpanLogCap
	}
	return &SpanLog{service: service, ring: make([]PipeSpan, capacity)}
}

// Service returns the name spans are recorded under.
func (l *SpanLog) Service() string {
	if l == nil {
		return ""
	}
	return l.service
}

// Record appends one span for a sampled context; unsampled contexts and nil
// logs cost one branch and allocate nothing.
func (l *SpanLog) Record(tc TraceContext, stage, tag string, start time.Time, dur time.Duration) {
	if l == nil || !tc.Sampled {
		return
	}
	l.RecordAt(tc, stage, tag, start.UnixNano(), int64(dur))
}

// RecordAt is Record with pre-computed clock readings, for callers that
// already hold the timestamps as integers (the wire decoder, tests).
func (l *SpanLog) RecordAt(tc TraceContext, stage, tag string, startUnixNano, durNano int64) {
	if l == nil || !tc.Sampled {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = PipeSpan{
		TraceID: tc.ID,
		Service: l.service,
		Stage:   stage,
		Tag:     tag,
		Start:   startUnixNano,
		Dur:     durNano,
	}
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Len returns the number of retained spans.
func (l *SpanLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total returns the number of spans ever recorded (retained or evicted).
func (l *SpanLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Spans returns the retained spans of one trace in record order, or nil when
// the trace is unknown (evicted, never sampled, or recorded elsewhere).
func (l *SpanLog) Spans(traceID uint64) []PipeSpan {
	return l.filter(func(s PipeSpan) bool { return s.TraceID == traceID })
}

// All returns every retained span, oldest first.
func (l *SpanLog) All() []PipeSpan {
	return l.filter(func(PipeSpan) bool { return true })
}

func (l *SpanLog) filter(keep func(PipeSpan) bool) []PipeSpan {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []PipeSpan
	start := l.next - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		if s := l.ring[(start+i)%len(l.ring)]; keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// WriteNDJSON writes spans as one JSON object per line, oldest first. A zero
// traceID exports every retained span; otherwise only that trace's spans.
func (l *SpanLog) WriteNDJSON(w io.Writer, traceID uint64) error {
	var spans []PipeSpan
	if traceID == 0 {
		spans = l.All()
	} else {
		spans = l.Spans(traceID)
	}
	return WriteSpansNDJSON(w, spans)
}

// WriteSpansNDJSON writes spans as NDJSON lines.
func WriteSpansNDJSON(w io.Writer, spans []PipeSpan) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}
