package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// TestTracingZeroOverheadWhenNil is the disabled-path contract: every tracer
// entry point on a nil *Tracer must perform zero allocations, so the hot
// solve loop can call through unconditionally.
func TestTracingZeroOverheadWhenNil(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		end := tr.Span("solve")
		tr.IRLSIter("solve", 1, 0.5, 2, 10)
		tr.Candidate("adaptive", 0.8, 0.2, 1e-3, nil)
		tr.Note("solve", "ignored")
		end()
		if tr.Enabled() || tr.Len() != 0 || tr.Events() != nil {
			t.Fatal("nil tracer reported state")
		}
	})
	if allocs != 0 {
		t.Errorf("nil tracer allocated %.1f times per run, want 0", allocs)
	}
}

// TestSpanAtMatchesSpan proves the handle-based variant emits the same event
// pair as the closure-based Span, and that the nil path allocates nothing.
func TestSpanAtMatchesSpan(t *testing.T) {
	tr := NewTracer()
	mark := tr.SpanAt("dispatch")
	tr.Note("dispatch", "inside")
	mark.End()

	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("got %d events, want 3", len(ev))
	}
	if ev[0].Kind != KindSpanStart || ev[0].Span != "dispatch" {
		t.Errorf("start event = %+v", ev[0])
	}
	if ev[2].Kind != KindSpanEnd || ev[2].Span != "dispatch" {
		t.Errorf("end event = %+v", ev[2])
	}
	if ev[2].DurMicros != ev[2].TMicros-ev[0].TMicros {
		t.Errorf("duration %d != end-start %d", ev[2].DurMicros, ev[2].TMicros-ev[0].TMicros)
	}

	var nilTr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		m := nilTr.SpanAt("dispatch")
		m.End()
	})
	if allocs != 0 {
		t.Errorf("nil SpanAt allocated %.1f times per run, want 0", allocs)
	}
}

func TestTracerRecordsOrderedEvents(t *testing.T) {
	tr := NewTracer()
	end := tr.Span("solve")
	tr.IRLSIter("solve", 1, 0.25, 0, 4)
	tr.IRLSIter("solve", 2, 0.125, 1, 4)
	tr.Candidate("adaptive", 0.8, 0.2, 2e-4, nil)
	tr.Candidate("adaptive", 0.6, 0.2, 0, errors.New("no solution"))
	end()

	ev := tr.Events()
	if len(ev) != 6 {
		t.Fatalf("got %d events, want 6", len(ev))
	}
	kinds := []string{KindSpanStart, KindIRLSIter, KindIRLSIter, KindCandidate, KindCandidate, KindSpanEnd}
	for i, k := range kinds {
		if ev[i].Kind != k {
			t.Errorf("event %d kind = %q, want %q", i, ev[i].Kind, k)
		}
		if i > 0 && ev[i].TMicros < ev[i-1].TMicros {
			t.Errorf("timestamps not monotonic at %d: %d < %d", i, ev[i].TMicros, ev[i-1].TMicros)
		}
	}
	if ev[1].Iter != 1 || ev[1].Residual != 0.25 || ev[2].FloorHits != 1 {
		t.Errorf("irls events carry wrong fields: %+v %+v", ev[1], ev[2])
	}
	if ev[3].ScanRange != 0.8 || ev[3].Interval != 0.2 || ev[3].WResidual != 2e-4 {
		t.Errorf("candidate event wrong: %+v", ev[3])
	}
	if ev[4].Err != "no solution" {
		t.Errorf("failed candidate err = %q", ev[4].Err)
	}
	if ev[5].DurMicros < 0 {
		t.Errorf("span duration negative: %d", ev[5].DurMicros)
	}
	// Events() copies: mutating the copy must not touch the tracer.
	ev[0].Kind = "mutated"
	if tr.Events()[0].Kind != KindSpanStart {
		t.Error("Events() aliases internal storage")
	}
}

func TestTracerNDJSONRoundTrip(t *testing.T) {
	tr := NewTracer()
	defer tr.Span("solve")()
	tr.IRLSIter("solve", 1, 0.5, 0, 2)

	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	sawIter := false
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v: %s", lines, err, sc.Text())
		}
		if e.Kind == KindIRLSIter {
			sawIter = true
			if e.Residual != 0.5 || e.Iter != 1 {
				t.Errorf("decoded iter event %+v", e)
			}
		}
		lines++
	}
	if lines != 2 || !sawIter {
		t.Errorf("ndjson lines = %d (irls seen %v), want 2 with an irls_iter", lines, sawIter)
	}
}
