package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestTraceSchemaGolden freezes the NDJSON wire schema of solve-trace
// events: the exact field names, types, and omit-empty behaviour that the
// flight recorder, /debug/trace, and /debug/flight consumers rely on.
// Changing this output is a breaking change to the trace schema guarantee in
// DESIGN.md §9 and must be made deliberately, updating both.
func TestTraceSchemaGolden(t *testing.T) {
	events := []Event{
		{TMicros: 1, Kind: KindSpanStart, Span: "solve"},
		{TMicros: 5, Kind: KindIRLSIter, Span: "solve", Iter: 2,
			Residual: 0.125, FloorHits: 3, Condition: 42.5},
		{TMicros: 9, Kind: KindCandidate, Span: "adaptive",
			ScanRange: 0.8, Interval: 0.2, WResidual: 0.0625},
		{TMicros: 11, Kind: KindCandidate, Span: "adaptive",
			ScanRange: 1, Interval: 0.25, Err: "rank deficient"},
		{TMicros: 13, Kind: KindNote, Span: "solve", Detail: "weights floored"},
		{TMicros: 20, Kind: KindSpanEnd, Span: "solve", DurMicros: 19},
	}
	golden := `{"t_us":1,"event":"span_start","span":"solve"}
{"t_us":5,"event":"irls_iter","span":"solve","iter":2,"residual_norm":0.125,"weight_floor_hits":3,"condition_estimate":42.5}
{"t_us":9,"event":"candidate","span":"adaptive","scan_range_m":0.8,"interval_m":0.2,"weighted_residual":0.0625}
{"t_us":11,"event":"candidate","span":"adaptive","scan_range_m":1,"interval_m":0.25,"error":"rank deficient"}
{"t_us":13,"event":"note","span":"solve","detail":"weights floored"}
{"t_us":20,"event":"span_end","span":"solve","duration_us":19}
`
	var buf bytes.Buffer
	if err := WriteEventsNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Errorf("trace NDJSON schema drifted.\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}

	// The reverse direction must hold too: the golden lines decode back into
	// identical events, so recorded flights replay losslessly.
	dec := json.NewDecoder(&buf)
	buf.WriteString(golden)
	for i := range events {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("decode golden line %d: %v", i, err)
		}
		if e != events[i] {
			t.Errorf("line %d round-trip: got %+v, want %+v", i, e, events[i])
		}
	}
}
