package obs

import (
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestRuntimeMetricsExposition registers the runtime bridge and checks every
// lion_go_* gauge appears in the exposition with a sane value.
func TestRuntimeMetricsExposition(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent

	var sb strings.Builder
	r.WritePrometheus(&sb)
	text := sb.String()

	values := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		values[fields[0]] = v
	}

	if g := values["lion_go_goroutines"]; g < 1 || g > 1e6 {
		t.Errorf("lion_go_goroutines = %v, want a live-process count", g)
	}
	if h := values["lion_go_heap_inuse_bytes"]; h <= 0 {
		t.Errorf("lion_go_heap_inuse_bytes = %v, want > 0", h)
	}
	if p, ok := values["lion_go_gc_pause_seconds_total"]; !ok || p < 0 {
		t.Errorf("lion_go_gc_pause_seconds_total = %v (present %v), want >= 0", p, ok)
	}
	cyclesBefore := values["lion_go_gc_cycles_total"]
	runtime.GC()
	sb.Reset()
	r.WritePrometheus(&sb)
	m := regexp.MustCompile(`(?m)^lion_go_gc_cycles_total (\S+)$`).FindStringSubmatch(sb.String())
	if m == nil {
		t.Fatal("lion_go_gc_cycles_total missing after GC")
	}
	cyclesAfter, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if cyclesAfter <= cyclesBefore {
		t.Errorf("gc cycles did not advance after runtime.GC(): %v -> %v", cyclesBefore, cyclesAfter)
	}

	for _, typ := range []string{
		"# TYPE lion_go_goroutines gauge",
		"# TYPE lion_go_heap_inuse_bytes gauge",
		"# TYPE lion_go_gc_pause_seconds_total gauge",
		"# TYPE lion_go_gc_cycles_total gauge",
	} {
		if !strings.Contains(text, typ) {
			t.Errorf("exposition missing %q", typ)
		}
	}
}

// TestGaugeVecExposition freezes the GaugeVec exposition format: one line
// per child, label values sorted and quoted.
func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("lion_test_family", "A labelled gauge.", "antenna")
	v.With("b").Set(2.5)
	v.With("a").Set(-1)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := "# HELP lion_test_family A labelled gauge.\n" +
		"# TYPE lion_test_family gauge\n" +
		"lion_test_family{antenna=\"a\"} -1\n" +
		"lion_test_family{antenna=\"b\"} 2.5\n"
	if sb.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", sb.String(), want)
	}
	if got := v.With("a").Value(); got != -1 {
		t.Errorf("With(a) = %v, want -1", got)
	}
}
