package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger writes structured JSON log lines: one object per line with ts,
// level, msg, and the given key/value fields. The nil Logger discards
// everything, so optional logging threads through APIs the same way the nil
// Tracer does.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time // test hook; nil means time.Now
}

// NewLogger returns a logger writing JSON lines to w.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w}
}

// Info logs at level info. kv are alternating key/value pairs; a trailing
// odd key gets the value "(MISSING)".
func (l *Logger) Info(msg string, kv ...any) { l.log("info", msg, kv) }

// Warn logs at level warn.
func (l *Logger) Warn(msg string, kv ...any) { l.log("warn", msg, kv) }

// Error logs at level error.
func (l *Logger) Error(msg string, kv ...any) { l.log("error", msg, kv) }

func (l *Logger) log(level, msg string, kv []any) {
	if l == nil {
		return
	}
	rec := make(map[string]any, len(kv)/2+3)
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	rec["ts"] = now().UTC().Format(time.RFC3339Nano)
	rec["level"] = level
	rec["msg"] = msg
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		if i+1 < len(kv) {
			rec[key] = jsonSafe(kv[i+1])
		} else {
			rec[key] = "(MISSING)"
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		// A field resisted marshalling (e.g. a channel); degrade rather
		// than drop the record.
		line = []byte(fmt.Sprintf(`{"ts":%q,"level":%q,"msg":%q,"log_error":%q}`,
			rec["ts"], level, msg, err.Error()))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(append(line, '\n'))
}

// jsonSafe converts values that json.Marshal would reject or render
// unhelpfully (errors, durations) into strings.
func jsonSafe(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	default:
		return v
	}
}
