package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSamplerDeterministic1InN pins the sampling contract: the first batch
// and every n-th after it are sampled, ids are reproducible for a fixed seed,
// and distinct sampled batches get distinct ids.
func TestSamplerDeterministic1InN(t *testing.T) {
	const n = 4
	a := NewSampler(n, 42)
	b := NewSampler(n, 42)
	seen := make(map[uint64]bool)
	for i := 0; i < 64; i++ {
		ta, tb := a.Next(), b.Next()
		if ta != tb {
			t.Fatalf("batch %d: samplers with equal seeds disagree: %+v vs %+v", i, ta, tb)
		}
		if want := i%n == 0; ta.Sampled != want {
			t.Fatalf("batch %d: sampled = %v, want %v", i, ta.Sampled, want)
		}
		if ta.Sampled {
			if ta.ID == 0 {
				t.Fatalf("batch %d: sampled trace has zero id", i)
			}
			if seen[ta.ID] {
				t.Fatalf("batch %d: duplicate trace id %016x", i, ta.ID)
			}
			seen[ta.ID] = true
		} else if ta.ID != 0 {
			t.Fatalf("batch %d: unsampled context carries id %016x", i, ta.ID)
		}
	}
	other := NewSampler(n, 43)
	if a, b := NewSampler(n, 42).Next(), other.Next(); a.ID == b.ID {
		t.Error("different seeds produced the same first trace id")
	}
}

func TestSamplerDisabled(t *testing.T) {
	var nilS *Sampler
	for _, s := range []*Sampler{nilS, NewSampler(0, 1), NewSampler(-3, 1)} {
		for i := 0; i < 8; i++ {
			if tc := s.Next(); tc.Sampled || tc.ID != 0 {
				t.Fatalf("disabled sampler returned %+v", tc)
			}
		}
	}
}

func TestTraceIDStringRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := TraceIDString(id)
		if len(s) != 16 {
			t.Errorf("TraceIDString(%d) = %q, want 16 hex digits", id, s)
		}
		got, err := ParseTraceID(s)
		if err != nil || got != id {
			t.Errorf("ParseTraceID(%q) = %d, %v, want %d", s, got, err, id)
		}
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Error("ParseTraceID accepted garbage")
	}
}

// TestSpanLogBoundedRing proves old spans are evicted at capacity and Spans
// filters by trace id in record order.
func TestSpanLogBoundedRing(t *testing.T) {
	l := NewSpanLog("liond", 4)
	tcA := TraceContext{ID: 0xa, Sampled: true}
	tcB := TraceContext{ID: 0xb, Sampled: true}
	l.RecordAt(tcA, "decode", "", 100, 10)
	l.RecordAt(tcA, "solve", "T1", 110, 20)
	l.RecordAt(tcB, "decode", "", 200, 5)
	l.RecordAt(tcB, "solve", "T2", 205, 7)
	if l.Len() != 4 || l.Total() != 4 {
		t.Fatalf("len=%d total=%d, want 4/4", l.Len(), l.Total())
	}
	// One more evicts tcA's oldest span.
	l.RecordAt(tcB, "publish", "T2", 212, 1)
	if l.Len() != 4 || l.Total() != 5 {
		t.Fatalf("after eviction len=%d total=%d, want 4/5", l.Len(), l.Total())
	}
	a := l.Spans(0xa)
	if len(a) != 1 || a[0].Stage != "solve" || a[0].Tag != "T1" {
		t.Fatalf("trace a spans = %+v, want only the solve span", a)
	}
	b := l.Spans(0xb)
	if len(b) != 3 || b[0].Stage != "decode" || b[2].Stage != "publish" {
		t.Fatalf("trace b spans = %+v", b)
	}
	if got := l.Spans(0xc); got != nil {
		t.Fatalf("unknown trace returned %+v", got)
	}
	if l.Service() != "liond" {
		t.Errorf("service = %q", l.Service())
	}
}

// TestSpanLogNDJSONRoundTrip freezes the span export schema (trace_id hex,
// service, stage, start_unix_ns, duration_ns) and proves a fetched line
// unmarshals back to the identical span — the merge path lionroute relies on.
func TestSpanLogNDJSONRoundTrip(t *testing.T) {
	l := NewSpanLog("lionroute", 16)
	tc := TraceContext{ID: 0x0123456789abcdef, Sampled: true}
	l.Record(tc, "queue_wait", "", time.Unix(12, 34), 5*time.Millisecond)

	var buf bytes.Buffer
	if err := l.WriteNDJSON(&buf, tc.ID); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	want := `{"trace_id":"0123456789abcdef","service":"lionroute","stage":"queue_wait","start_unix_ns":12000000034,"duration_ns":5000000}`
	if line != want {
		t.Fatalf("span json:\n got %s\nwant %s", line, want)
	}
	var back PipeSpan
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatal(err)
	}
	if back != (PipeSpan{TraceID: tc.ID, Service: "lionroute", Stage: "queue_wait",
		Start: 12000000034, Dur: 5000000}) {
		t.Fatalf("round-tripped span = %+v", back)
	}

	// Filtered export: a foreign trace id yields no lines; id 0 exports all.
	buf.Reset()
	if err := l.WriteNDJSON(&buf, 0x999); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("foreign trace exported %q", buf.String())
	}
	buf.Reset()
	if err := l.WriteNDJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 1 {
		t.Errorf("export-all wrote %d lines, want 1", lines)
	}
}

// TestPipelineUntracedZeroAllocs is the obs-layer piece of the PR's carrying
// constraint: with sampling off (or mid-stride), the per-batch tracing
// decision plus every Record call must allocate nothing.
func TestPipelineUntracedZeroAllocs(t *testing.T) {
	s := NewSampler(1<<30, 7) // samples batch 0 then effectively never again
	s.Next()                  // consume the one sampled batch
	l := NewSpanLog("liond", 64)
	var nilLog *SpanLog
	now := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		tc := s.Next()
		l.Record(tc, "ingest_decode", "", now, time.Millisecond)
		l.RecordAt(tc, "solve", "T1", 1, 2)
		nilLog.Record(TraceContext{ID: 1, Sampled: true}, "solve", "T1", now, 0)
		if tc.Sampled {
			t.Fatal("sampler unexpectedly sampled")
		}
	})
	if allocs != 0 {
		t.Errorf("untraced pipeline path allocated %.1f times per run, want 0", allocs)
	}

	// The sampled path must also be steady-state alloc-free once the ring
	// exists: Record writes into pooled slots, never boxes.
	tc := TraceContext{ID: 42, Sampled: true}
	allocs = testing.AllocsPerRun(1000, func() {
		l.RecordAt(tc, "solve", "T1", 1, 2)
	})
	if allocs != 0 {
		t.Errorf("sampled RecordAt allocated %.1f times per run, want 0", allocs)
	}
}
