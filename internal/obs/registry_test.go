package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentIncrement hammers one counter, one vec child, one
// gauge, and one histogram from many goroutines; run under -race this is the
// registry's data-race proof, and the final values prove no increment is
// lost.
func TestRegistryConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lion_test_ops_total", "ops")
	vec := r.CounterVec("lion_test_dropped_total", "drops", "reason")
	overflow := vec.With("overflow")
	g := r.Gauge("lion_test_depth", "depth")
	h := r.Histogram("lion_test_latency_seconds", "latency", nil)

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				overflow.Inc()
				g.Add(1)
				h.Observe(0.001)
				var sb strings.Builder
				if i%100 == 0 {
					r.WritePrometheus(&sb) // scrape while writing
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := overflow.Value(); got != workers*per {
		t.Errorf("vec child = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestRegistryExpositionGolden pins the exact Prometheus text format: HELP
// and TYPE headers, sorted metric order, label quoting, cumulative histogram
// buckets with +Inf, and _sum/_count.
func TestRegistryExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lion_test_ingested_total", "samples accepted")
	c.Add(42)
	vec := r.CounterVec("lion_test_dropped_total", "samples dropped", "reason")
	vec.With("overflow").Add(3)
	vec.With("age").Inc()
	g := r.Gauge("lion_test_tags", "known tags")
	g.Set(2)
	r.GaugeFunc("lion_test_uptime_seconds", "uptime", func() float64 { return 1.5 })
	h := r.Histogram("lion_test_latency_seconds", "solve latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(7)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP lion_test_dropped_total samples dropped
# TYPE lion_test_dropped_total counter
lion_test_dropped_total{reason="age"} 1
lion_test_dropped_total{reason="overflow"} 3
# HELP lion_test_ingested_total samples accepted
# TYPE lion_test_ingested_total counter
lion_test_ingested_total 42
# HELP lion_test_latency_seconds solve latency
# TYPE lion_test_latency_seconds histogram
lion_test_latency_seconds_bucket{le="0.01"} 1
lion_test_latency_seconds_bucket{le="0.1"} 3
lion_test_latency_seconds_bucket{le="1"} 3
lion_test_latency_seconds_bucket{le="+Inf"} 4
lion_test_latency_seconds_sum 7.105
lion_test_latency_seconds_count 4
# HELP lion_test_tags known tags
# TYPE lion_test_tags gauge
lion_test_tags 2
# HELP lion_test_uptime_seconds uptime
# TYPE lion_test_uptime_seconds gauge
lion_test_uptime_seconds 1.5
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramExemplarExpositionGolden pins the exemplar-annotated text
// format: a bucket that received a sampled observation carries an
// OpenMetrics-style `# {trace_id="..."} value` suffix on its own line, later
// sampled observations into the same bucket replace the exemplar, and the
// +Inf bucket can carry one too.
func TestHistogramExemplarExpositionGolden(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lion_test_staleness_seconds", "estimate staleness", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.ObserveExemplar(0.05, TraceContext{ID: 0xabc, Sampled: true})
	h.ObserveExemplar(0.07, TraceContext{ID: 0xdef, Sampled: true}) // replaces 0xabc
	h.ObserveExemplar(7, TraceContext{ID: 0x123, Sampled: true})

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP lion_test_staleness_seconds estimate staleness
# TYPE lion_test_staleness_seconds histogram
lion_test_staleness_seconds_bucket{le="0.01"} 1
lion_test_staleness_seconds_bucket{le="0.1"} 3 # {trace_id="0000000000000def"} 0.07
lion_test_staleness_seconds_bucket{le="1"} 3
lion_test_staleness_seconds_bucket{le="+Inf"} 4 # {trace_id="0000000000000123"} 7
lion_test_staleness_seconds_sum 7.125
lion_test_staleness_seconds_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exemplar exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHistogramWithoutExemplarsUnchanged proves that unsampled contexts leave
// the exposition byte-identical to plain Observe — the with/without pair the
// scrape pipeline contract needs.
func TestHistogramWithoutExemplarsUnchanged(t *testing.T) {
	plain := NewRegistry()
	hp := plain.Histogram("lion_test_staleness_seconds", "estimate staleness", []float64{0.01, 0.1, 1})
	hp.Observe(0.05)
	hp.Observe(7)

	unsampled := NewRegistry()
	hu := unsampled.Histogram("lion_test_staleness_seconds", "estimate staleness", []float64{0.01, 0.1, 1})
	hu.ObserveExemplar(0.05, TraceContext{})
	hu.ObserveExemplar(7, TraceContext{ID: 99, Sampled: false})

	var a, b strings.Builder
	plain.WritePrometheus(&a)
	unsampled.WritePrometheus(&b)
	if a.String() != b.String() {
		t.Errorf("unsampled ObserveExemplar changed the exposition:\n--- plain ---\n%s--- unsampled ---\n%s",
			a.String(), b.String())
	}
	if strings.Contains(b.String(), "trace_id") {
		t.Error("unsampled exposition contains an exemplar annotation")
	}

	// And the unsampled observe path allocates nothing.
	allocs := testing.AllocsPerRun(1000, func() {
		hu.ObserveExemplar(0.05, TraceContext{})
	})
	if allocs != 0 {
		t.Errorf("unsampled ObserveExemplar allocated %.1f times per run, want 0", allocs)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lion_test_total", "")
	b := r.Counter("lion_test_total", "")
	if a != b {
		t.Error("re-registering the same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("lion_test_total", "")
}

func TestRegistryRejectsBadName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name did not panic")
		}
	}()
	NewRegistry().Counter("lion test with spaces", "")
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewRegistry().Histogram("lion_test_latency_seconds", "", nil)
	if _, ok := h.Quantile(50); ok {
		t.Error("empty histogram reported a quantile")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	p50, ok := h.Quantile(50)
	if !ok || p50 < 50 || p50 > 51 {
		t.Errorf("p50 = %g ok=%v, want ~50.5", p50, ok)
	}
	p99, ok := h.Quantile(99)
	if !ok || p99 < 99 || p99 > 100 {
		t.Errorf("p99 = %g ok=%v, want ~99", p99, ok)
	}
	if m := h.WindowMean(); m != 50.5 {
		t.Errorf("window mean = %g, want 50.5", m)
	}
}
