package obs

import "runtime/metrics"

// Names read from runtime/metrics. heap in-use is the sum of the objects and
// unused classes, i.e. the bytes in spans currently dedicated to heap
// objects (MemStats.HeapInuse).
const (
	rmGoroutines  = "/sched/goroutines:goroutines"
	rmHeapObjects = "/memory/classes/heap/objects:bytes"
	rmHeapUnused  = "/memory/classes/heap/unused:bytes"
	rmGCPause     = "/cpu/classes/gc/pause:cpu-seconds"
	rmGCCycles    = "/gc/cycles/total:gc-cycles"
)

// RegisterRuntimeMetrics bridges Go runtime health into the registry as
// lion_go_* gauges sampled from runtime/metrics at exposition time: live
// goroutine count, heap bytes in use, cumulative GC stop-the-world pause
// time, and completed GC cycles. Safe to call more than once on the same
// registry (re-registration keeps the first function).
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("lion_go_goroutines", "Live goroutines.", func() float64 {
		return readRuntime(rmGoroutines)
	})
	r.GaugeFunc("lion_go_heap_inuse_bytes", "Heap bytes in spans currently in use.", func() float64 {
		return readRuntime(rmHeapObjects) + readRuntime(rmHeapUnused)
	})
	r.GaugeFunc("lion_go_gc_pause_seconds_total", "Cumulative GC pause CPU time, seconds.", func() float64 {
		return readRuntime(rmGCPause)
	})
	r.GaugeFunc("lion_go_gc_cycles_total", "Completed GC cycles since process start.", func() float64 {
		return readRuntime(rmGCCycles)
	})
}

// readRuntime samples one runtime/metrics value as a float64; unknown or
// bad-kind names read as 0 (forward compatibility over crashing a gauge).
func readRuntime(name string) float64 {
	sample := []metrics.Sample{{Name: name}}
	metrics.Read(sample)
	switch sample[0].Value.Kind() {
	case metrics.KindUint64:
		return float64(sample[0].Value.Uint64())
	case metrics.KindFloat64:
		return sample[0].Value.Float64()
	default:
		return 0
	}
}
