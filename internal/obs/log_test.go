package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestLoggerWritesJSONLines(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.now = func() time.Time { return time.Unix(1700000000, 0) }
	l.Info("listening", "addr", ":8077", "workers", 4)
	l.Error("drain", "err", errors.New("boom"), "took", 250*time.Millisecond)

	var rec map[string]any
	dec := json.NewDecoder(&buf)
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("first line: %v", err)
	}
	if rec["level"] != "info" || rec["msg"] != "listening" || rec["addr"] != ":8077" || rec["workers"] != 4.0 {
		t.Errorf("info record: %v", rec)
	}
	if rec["ts"] == "" {
		t.Error("missing ts")
	}
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("second line: %v", err)
	}
	if rec["level"] != "error" || rec["err"] != "boom" || rec["took"] != "250ms" {
		t.Errorf("error record: %v", rec)
	}
}

func TestLoggerNilAndOddPairs(t *testing.T) {
	var l *Logger
	l.Info("dropped", "k", "v") // must not panic

	var buf bytes.Buffer
	ll := NewLogger(&buf)
	ll.Warn("odd", "lonely")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["lonely"] != "(MISSING)" {
		t.Errorf("odd pair: %v", rec)
	}
}
