package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins a CPU profile at prefix.cpu.pprof and returns a stop
// function that ends it and additionally writes a heap profile to
// prefix.heap.pprof. It backs the -profile flag of the CLI tools; long-lived
// daemons serve net/http/pprof instead.
func StartProfiles(prefix string) (stop func() error, err error) {
	cpuPath := prefix + ".cpu.pprof"
	cpu, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpu.Close(); err != nil {
			return err
		}
		heap, err := os.Create(prefix + ".heap.pprof")
		if err != nil {
			return err
		}
		defer heap.Close()
		runtime.GC() // get up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(heap); err != nil {
			return fmt.Errorf("obs: write heap profile: %w", err)
		}
		return nil
	}, nil
}
