// Package obs is the unified observability layer of the LION pipeline: a
// dependency-free metrics registry with exact Prometheus exposition, a
// nil-safe solve tracer that records per-IRLS-iteration and per-candidate
// events as NDJSON, and a structured JSON logger.
//
// The three pieces share one design rule: the hot path pays nothing when
// observability is off. Tracer methods are nil-safe no-ops (a disabled solve
// performs zero allocations — enforced by TestTracingZeroOverheadWhenNil),
// counters are single atomic adds, and exposition work happens only when a
// scraper asks for it.
//
// Every metric registered anywhere in the repo must be named lion_[a-z_]+
// and documented in DESIGN.md §9; `make check` enforces both through
// tools/metriclint.
package obs
