package batch

import (
	"context"
	"errors"
	"sync"

	"github.com/rfid-lion/lion/internal/obs"
)

// ErrPoolClosed is returned by Submit after Close has been called.
var ErrPoolClosed = errors.New("batch: pool closed")

// Pool is the persistent sibling of Engine: the same bounded workers, per-job
// timeout, and panic recovery, but accepting jobs over time instead of one
// slice per Run. It backs streaming workloads (internal/stream) where windows
// arrive continuously and each completion must fire a callback.
//
// The queue is unbounded; callers that need back-pressure must bound their
// own outstanding submissions (the stream engine keeps at most one queued
// window per tag).
type Pool struct {
	runner *Engine

	jobsOK    *obs.Counter
	jobsErr   *obs.Counter
	jobsPanic *obs.Counter

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []poolTask // ring-ish FIFO: live tasks are queue[head:]
	head   int        // index of the next task to dequeue
	closed bool
	next   int
	wg     sync.WaitGroup
}

type poolTask struct {
	index int
	job   Job
	done  func(Outcome)
}

// NewPool starts the workers immediately. Zero or negative Workers means
// runtime.GOMAXPROCS(0), as for New.
func NewPool(opts Options) *Pool {
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	jobs := reg.CounterVec("lion_batch_jobs_total", "Pool jobs completed, by result.", "result")
	p := &Pool{
		runner:    New(opts),
		jobsOK:    jobs.With("ok"),
		jobsErr:   jobs.With("error"),
		jobsPanic: jobs.With("panic"),
	}
	reg.GaugeFunc("lion_batch_queue_depth", "Pool jobs queued but not yet running.", func() float64 {
		return float64(p.Len())
	})
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < p.runner.workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.runner.workers }

// Submit enqueues one job. done, when non-nil, is invoked from a worker
// goroutine with the job's outcome; Outcome.Index is the submission sequence
// number. Submit never blocks on job execution.
func (p *Pool) Submit(job Job, done func(Outcome)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.queue = append(p.queue, poolTask{index: p.next, job: job, done: done})
	p.next++
	p.cond.Signal()
	return nil
}

// Len returns the number of jobs queued but not yet picked up by a worker.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue) - p.head
}

// Close stops accepting submissions, drains every queued job, and waits for
// running jobs (and their done callbacks) to finish. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.head == len(p.queue) && !p.closed {
			p.cond.Wait()
		}
		if p.head == len(p.queue) {
			p.mu.Unlock()
			return
		}
		t := p.queue[p.head]
		p.queue[p.head] = poolTask{} // release the job/done references
		p.head++
		if p.head == len(p.queue) {
			// Drained: rewind so appends keep reusing the same backing array.
			// This is what keeps a steady-state Submit allocation-free — the
			// previous queue[1:] reslice leaked front capacity on every
			// dequeue and forced append to reallocate perpetually.
			p.queue = p.queue[:0]
			p.head = 0
		} else if p.head >= 64 && p.head*2 >= len(p.queue) {
			// Deep queue with a mostly-consumed prefix: compact in place.
			n := copy(p.queue, p.queue[p.head:])
			for i := n; i < len(p.queue); i++ {
				p.queue[i] = poolTask{}
			}
			p.queue = p.queue[:n]
			p.head = 0
		}
		p.mu.Unlock()
		o := p.runner.runOne(context.Background(), t.index, t.job)
		switch {
		case o.Err == nil:
			p.jobsOK.Inc()
		case errors.Is(o.Err, ErrPanic):
			p.jobsPanic.Inc()
		default:
			p.jobsErr.Inc()
		}
		if t.done != nil {
			t.done(o)
		}
	}
}
