// Package batch is a bounded worker-pool engine for fanning out
// embarrassingly parallel localization work: adaptive parameter sweeps,
// per-trial experiment repetitions, and bulk per-tag localization requests.
//
// The engine guarantees deterministic result ordering — outcome i always
// corresponds to job i, regardless of worker count or scheduling — so a
// parallel run is byte-identical to a serial run of the same jobs. Jobs run
// under a context.Context with optional per-job timeouts, and panics inside
// a job are recovered into errors instead of taking the process down.
//
// The package is domain-agnostic (stdlib only) so that internal/core and
// internal/experiment can both build on it without import cycles.
package batch
