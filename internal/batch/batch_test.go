package batch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderingMatchesSubmission(t *testing.T) {
	e := New(Options{Workers: 8})
	jobs := make([]Job, 100)
	for i := range jobs {
		i := i
		jobs[i] = func(context.Context) (any, error) { return i * i, nil }
	}
	out := e.Run(context.Background(), jobs)
	for i, o := range out {
		if o.Index != i || o.Err != nil || o.Value.(int) != i*i {
			t.Fatalf("outcome %d = %+v", i, o)
		}
	}
}

func TestRunEmptyAndNilContext(t *testing.T) {
	e := New(Options{})
	if out := e.Run(context.Background(), nil); len(out) != 0 {
		t.Fatalf("empty run returned %d outcomes", len(out))
	}
	out := e.Run(nil, []Job{func(context.Context) (any, error) { return "ok", nil }})
	if out[0].Err != nil || out[0].Value != "ok" {
		t.Fatalf("nil-context run = %+v", out[0])
	}
}

func TestDefaultWorkers(t *testing.T) {
	if w := New(Options{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if w := New(Options{Workers: -3}).Workers(); w < 1 {
		t.Fatalf("negative workers = %d", w)
	}
}

func TestPanicRecovery(t *testing.T) {
	e := New(Options{Workers: 4})
	jobs := []Job{
		func(context.Context) (any, error) { return 1, nil },
		func(context.Context) (any, error) { panic("boom") },
		func(context.Context) (any, error) { return 3, nil },
	}
	out := e.Run(context.Background(), jobs)
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("healthy jobs failed: %+v", out)
	}
	if !errors.Is(out[1].Err, ErrPanic) {
		t.Fatalf("panic outcome err = %v", out[1].Err)
	}
}

// TestStressMixedJobsDeterministic submits 1000 mixed jobs (pure compute,
// erroring, panicking) and asserts the outcome slice is identical across 10
// repeated parallel runs — the determinism contract under -race.
func TestStressMixedJobsDeterministic(t *testing.T) {
	const n = 1000
	errSentinel := errors.New("job failed")
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		switch i % 5 {
		case 3:
			jobs[i] = func(context.Context) (any, error) { return nil, fmt.Errorf("%w: %d", errSentinel, i) }
		case 4:
			jobs[i] = func(context.Context) (any, error) { panic(i) }
		default:
			jobs[i] = func(context.Context) (any, error) {
				s := 0
				for k := 0; k < i%97+1; k++ {
					s += k * i
				}
				return s, nil
			}
		}
	}
	normalize := func(out []Outcome) []string {
		s := make([]string, len(out))
		for i, o := range out {
			s[i] = fmt.Sprintf("%d|%v|%v", o.Index, o.Value, o.Err)
		}
		return s
	}
	e := New(Options{Workers: 8})
	first := normalize(e.Run(context.Background(), jobs))
	for run := 0; run < 10; run++ {
		got := normalize(e.Run(context.Background(), jobs))
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d differs from first run", run)
		}
	}
	// Serial run is identical too.
	serial := normalize(New(Options{Workers: 1}).Run(context.Background(), jobs))
	if !reflect.DeepEqual(serial, first) {
		t.Fatal("serial run differs from parallel run")
	}
}

// TestCancellationMidFlight cancels the run context once a fraction of the
// jobs completed and asserts that (a) Run returns, (b) unstarted jobs carry
// context.Canceled, and (c) some jobs did finish before the cut.
func TestCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	const n = 500
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = func(jctx context.Context) (any, error) {
			if done.Add(1) == 50 {
				cancel()
			}
			select {
			case <-jctx.Done():
				return nil, jctx.Err()
			case <-time.After(time.Millisecond):
				return "done", nil
			}
		}
	}
	out := New(Options{Workers: 4}).Run(ctx, jobs)
	var completed, cancelled int
	for _, o := range out {
		switch {
		case o.Err == nil:
			completed++
		case errors.Is(o.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("unexpected error: %v", o.Err)
		}
	}
	if completed == 0 {
		t.Error("no job completed before cancellation")
	}
	if cancelled == 0 {
		t.Error("no job observed the cancellation")
	}
	if completed+cancelled != n {
		t.Errorf("accounted %d of %d jobs", completed+cancelled, n)
	}
}

// TestPerJobTimeout gives every job a 5 ms budget; jobs that sleep past it
// must fail with context.DeadlineExceeded while fast jobs still succeed.
func TestPerJobTimeout(t *testing.T) {
	e := New(Options{Workers: 4, JobTimeout: 5 * time.Millisecond})
	jobs := []Job{
		func(context.Context) (any, error) { return "fast", nil },
		func(jctx context.Context) (any, error) {
			select {
			case <-jctx.Done():
				return nil, jctx.Err()
			case <-time.After(time.Second):
				return "slow", nil
			}
		},
	}
	out := e.Run(context.Background(), jobs)
	if out[0].Err != nil {
		t.Fatalf("fast job failed: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, context.DeadlineExceeded) {
		t.Fatalf("slow job err = %v, want deadline exceeded", out[1].Err)
	}
}

// TestTimeoutIsPerJobNotPerRun submits more slow-ish jobs than workers with
// a budget each job individually fits in: all must succeed, proving the
// deadline starts when a job starts, not when the run starts.
func TestTimeoutIsPerJobNotPerRun(t *testing.T) {
	e := New(Options{Workers: 2, JobTimeout: 100 * time.Millisecond})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = func(jctx context.Context) (any, error) {
			select {
			case <-jctx.Done():
				return nil, jctx.Err()
			case <-time.After(20 * time.Millisecond):
				return "ok", nil
			}
		}
	}
	for i, o := range e.Run(context.Background(), jobs) {
		if o.Err != nil {
			t.Fatalf("job %d hit a shared deadline: %v", i, o.Err)
		}
	}
}

func TestMapTypedResults(t *testing.T) {
	e := New(Options{Workers: 4})
	items := []int{1, 2, 3, 4, 5}
	results, errs := Map(context.Background(), e, items,
		func(_ context.Context, v int) (float64, error) {
			if v == 3 {
				return 0, errors.New("skip three")
			}
			return float64(v) * 0.5, nil
		})
	for i, v := range items {
		if v == 3 {
			if errs[i] == nil {
				t.Error("expected error for item 3")
			}
			continue
		}
		if errs[i] != nil || results[i] != float64(v)*0.5 {
			t.Errorf("item %d: result %v err %v", v, results[i], errs[i])
		}
	}
}

func TestFirstError(t *testing.T) {
	if err := FirstError([]Outcome{{Index: 0}, {Index: 1}}); err != nil {
		t.Fatalf("clean outcomes gave %v", err)
	}
	sentinel := errors.New("bad")
	err := FirstError([]Outcome{{Index: 0}, {Index: 1, Err: sentinel}, {Index: 2, Err: errors.New("later")}})
	if !errors.Is(err, sentinel) {
		t.Fatalf("FirstError = %v, want the index-1 error", err)
	}
}
