package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rfid-lion/lion/internal/obs"
)

// ErrPanic wraps a panic recovered from a job. Use errors.Is to detect it;
// the wrapped message carries the panic value.
var ErrPanic = errors.New("batch: job panicked")

// Options configures an Engine.
type Options struct {
	// Workers is the pool size. Zero or negative means runtime.GOMAXPROCS(0).
	Workers int
	// JobTimeout, when positive, bounds each job's run time: the job's
	// context is cancelled with context.DeadlineExceeded once it expires.
	JobTimeout time.Duration
	// Registry receives lion_batch_* metrics from Pool (Engine.Run is
	// stateless and stays uninstrumented). Nil means a private registry.
	Registry *obs.Registry
}

// Engine is a bounded worker pool with deterministic result ordering.
// An Engine is stateless between Run calls and safe for concurrent use.
type Engine struct {
	workers int
	timeout time.Duration
}

// New builds an engine from the options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: w, timeout: opts.JobTimeout}
}

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.workers }

// Job is one unit of work. The context carries cancellation and the per-job
// deadline; well-behaved long-running jobs should poll ctx.Err().
type Job func(ctx context.Context) (any, error)

// Outcome is the result of one job, keyed by its submission index.
type Outcome struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Value is the job's return value when Err is nil.
	Value any
	// Err is the job's error, a recovered panic (errors.Is ErrPanic), the
	// per-job timeout (context.DeadlineExceeded), or the run's cancellation
	// (context.Canceled) for jobs that never started.
	Err error
}

// Run executes the jobs across the pool and returns one outcome per job in
// submission order: out[i] is always job i's result, independent of worker
// count and scheduling, so parallel runs reproduce serial runs exactly.
//
// Cancelling ctx stops the dispatch of not-yet-started jobs — they complete
// with ctx's error — while jobs already running are cancelled through their
// own contexts and drain before Run returns.
func (e *Engine) Run(ctx context.Context, jobs []Job) []Outcome {
	out := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			out[i] = e.runOne(ctx, i, job)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i] = e.runOne(ctx, i, jobs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// runOne executes a single job with timeout scoping and panic recovery.
func (e *Engine) runOne(ctx context.Context, index int, job Job) (o Outcome) {
	o.Index = index
	if err := ctx.Err(); err != nil {
		o.Err = err
		return o
	}
	jctx := ctx
	if e.timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			o.Value, o.Err = nil, fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	o.Value, o.Err = job(jctx)
	return o
}

// Map fans fn over items with deterministic ordering: results[i] and
// errs[i] belong to items[i]. It is the typed convenience wrapper over
// Engine.Run for homogeneous workloads.
func Map[T, R any](ctx context.Context, e *Engine, items []T, fn func(ctx context.Context, item T) (R, error)) ([]R, []error) {
	jobs := make([]Job, len(items))
	for i := range items {
		item := items[i]
		jobs[i] = func(ctx context.Context) (any, error) {
			return fn(ctx, item)
		}
	}
	outcomes := e.Run(ctx, jobs)
	results := make([]R, len(items))
	errs := make([]error, len(items))
	for i, o := range outcomes {
		if o.Err != nil {
			errs[i] = o.Err
			continue
		}
		if v, ok := o.Value.(R); ok {
			results[i] = v
		}
	}
	return results, errs
}

// FirstError returns the error of the lowest-indexed failed outcome, or nil
// when every job succeeded. The lowest index makes the reported error
// deterministic across scheduling orders.
func FirstError(outcomes []Outcome) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("batch: job %d: %w", o.Index, o.Err)
		}
	}
	return nil
}
