package batch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsEveryJob(t *testing.T) {
	p := NewPool(Options{Workers: 4})
	var sum atomic.Int64
	var wg sync.WaitGroup
	for i := 1; i <= 100; i++ {
		i := i
		wg.Add(1)
		err := p.Submit(func(ctx context.Context) (any, error) {
			return int64(i), nil
		}, func(o Outcome) {
			defer wg.Done()
			if o.Err != nil {
				t.Errorf("job %d: %v", o.Index, o.Err)
				return
			}
			sum.Add(o.Value.(int64))
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	p.Close()
	if got := sum.Load(); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if err := p.Submit(func(ctx context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}, nil); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	p.Close()
	if got := ran.Load(); got != 50 {
		t.Errorf("ran %d jobs before Close returned, want 50", got)
	}
	if err := p.Submit(func(ctx context.Context) (any, error) { return nil, nil }, nil); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Submit after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestPoolRecoversPanic(t *testing.T) {
	p := NewPool(Options{Workers: 2})
	defer p.Close()
	done := make(chan Outcome, 1)
	if err := p.Submit(func(ctx context.Context) (any, error) {
		panic("boom")
	}, func(o Outcome) { done <- o }); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if !errors.Is(o.Err, ErrPanic) {
		t.Errorf("outcome err = %v, want ErrPanic", o.Err)
	}
}

func TestPoolJobTimeout(t *testing.T) {
	p := NewPool(Options{Workers: 1, JobTimeout: 10 * time.Millisecond})
	defer p.Close()
	done := make(chan Outcome, 1)
	if err := p.Submit(func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	}, func(o Outcome) { done <- o }); err != nil {
		t.Fatal(err)
	}
	o := <-done
	if !errors.Is(o.Err, context.DeadlineExceeded) {
		t.Errorf("outcome err = %v, want DeadlineExceeded", o.Err)
	}
}
