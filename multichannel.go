package lion

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/sim"
)

// Frequency-hopping support. The paper's testbed runs on a fixed China-band
// carrier; FCC-region readers hop channels, and every hop re-locks the PLL
// with a channel-specific phase offset. The radical-line model extends
// cleanly: one reference-distance unknown per channel, shared coordinates.
type (
	// ChannelObservations is one hop channel's measurement set.
	ChannelObservations = core.ChannelObservations
	// HopPlan describes a reader's hop sequence for the simulator.
	HopPlan = sim.HopPlan
)

// Locate2DMultiChannel estimates a planar target from channel-hopped scans.
func Locate2DMultiChannel(channels []ChannelObservations, stride int, opts SolveOptions) (*Solution, error) {
	return core.Locate2DMultiChannel(channels, stride, opts)
}

// Locate3DMultiChannel is the spatial analogue of Locate2DMultiChannel.
func Locate3DMultiChannel(channels []ChannelObservations, stride int, opts SolveOptions) (*Solution, error) {
	return core.Locate3DMultiChannel(channels, stride, opts)
}

// SplitChannels groups observations by channel label, attaching each
// channel's wavelength.
func SplitChannels(obs []PosPhase, labels []int, lambdas map[int]float64) ([]ChannelObservations, error) {
	return core.SplitChannels(obs, labels, lambdas)
}
