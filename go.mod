module github.com/rfid-lion/lion

go 1.22
