package lion

import (
	"time"

	"github.com/rfid-lion/lion/internal/rf"
	"github.com/rfid-lion/lion/internal/sim"
	"github.com/rfid-lion/lion/internal/traject"
)

// Simulation testbed re-exports: everything needed to exercise the library
// without RFID hardware. The simulator produces exactly what a real reader
// reports — wrapped phases at known tag positions — including device phase
// offsets, phase-center displacement, noise, beams, multipath, and fades.
type (
	// Antenna models one reader antenna, including its true phase center.
	Antenna = sim.Antenna
	// Tag models one RFID tag with its reflection phase offset.
	Tag = sim.Tag
	// Environment bundles RF conditions (noise, reflectors, fading).
	Environment = sim.Environment
	// Reader drives simulated scans.
	Reader = sim.Reader
	// ReaderConfig parameterises a Reader.
	ReaderConfig = sim.ReaderConfig
	// Sample is one simulated read.
	Sample = sim.Sample
	// FadeModel describes bursty multipath fades.
	FadeModel = sim.FadeModel
	// Reflector is a planar multipath reflector.
	Reflector = rf.Reflector
	// Beam is a directional antenna gain pattern.
	Beam = rf.Beam
)

// NewEnvironment returns a free-space environment on the paper's band.
func NewEnvironment() (*Environment, error) { return sim.NewEnvironment() }

// NewReader builds a simulated reader for the environment.
func NewReader(env *Environment, cfg ReaderConfig) (*Reader, error) {
	return sim.NewReader(env, cfg)
}

// DefaultReaderConfig matches the paper's testbed (100 Hz reads).
func DefaultReaderConfig() ReaderConfig { return sim.DefaultReaderConfig() }

// NewBeam builds a cos-power beam pattern with the given boresight and full
// half-power beamwidth in radians.
func NewBeam(boresight Vec3, beamwidthRad float64) (*Beam, error) {
	return rf.NewBeam(boresight, beamwidthRad)
}

// Phases extracts the wrapped phases of a sample slice.
func Phases(samples []Sample) []float64 { return sim.Phases(samples) }

// Positions extracts the ground-truth tag positions of a sample slice.
func Positions(samples []Sample) []Vec3 { return sim.Positions(samples) }

// FilterSegment keeps only the samples carrying the given segment label.
func FilterSegment(samples []Sample, segment int) []Sample {
	return sim.FilterSegment(samples, segment)
}

// Trajectories.
type (
	// Trajectory maps elapsed time to tag position.
	Trajectory = traject.Trajectory
	// Segmented is a trajectory with labelled segments.
	Segmented = traject.Segmented
	// Linear is straight-line motion.
	Linear = traject.Linear
	// Polyline is waypoint motion at constant speed.
	Polyline = traject.Polyline
	// Circular is turntable motion.
	Circular = traject.Circular
	// ThreeLineScan is the paper's Fig. 11 calibration trajectory.
	ThreeLineScan = traject.ThreeLineScan
	// ThreeLineConfig parameterises a ThreeLineScan.
	ThreeLineConfig = traject.ThreeLineConfig
	// TwoLineScan is the reduced planar scan.
	TwoLineScan = traject.TwoLineScan
)

// Segment labels of the multi-line scans.
const (
	LineTransfer = traject.LineTransfer
	LineL1       = traject.LineL1
	LineL2       = traject.LineL2
	LineL3       = traject.LineL3
)

// NewLinear returns straight-line motion from one point to another at the
// given speed in m/s.
func NewLinear(from, to Vec3, speed float64) (*Linear, error) {
	return traject.NewLinear(from, to, speed)
}

// NewPolyline returns waypoint motion at the given speed in m/s.
func NewPolyline(points []Vec3, speed float64) (*Polyline, error) {
	return traject.NewPolyline(points, speed)
}

// NewCircularXY returns circular motion in a z = const plane.
func NewCircularXY(center Vec3, radius, speed, startAngle, turns float64) (*Circular, error) {
	return traject.NewCircularXY(center, radius, speed, startAngle, turns)
}

// NewThreeLineScan builds the three-line calibration trajectory.
func NewThreeLineScan(cfg ThreeLineConfig) (*ThreeLineScan, error) {
	return traject.NewThreeLineScan(cfg)
}

// NewTwoLineScan builds the two-line planar trajectory.
func NewTwoLineScan(xMin, xMax, ySpacing, speed float64) (*TwoLineScan, error) {
	return traject.NewTwoLineScan(xMin, xMax, ySpacing, speed)
}

// ScanDuration returns how long a scan of the trajectory takes.
func ScanDuration(t Trajectory) time.Duration { return t.Duration() }
