package lion_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	lion "github.com/rfid-lion/lion"
)

// The closed-loop recalibration stack must be drivable entirely through the
// facade: build the monitor and engine, wire a RecalController between them,
// feed a drifted trace, trigger a re-solve, and watch the StreamProfile swap.
func TestRecalFacadeClosedLoop(t *testing.T) {
	antenna := lion.V3(0.05, 0.8, 0)
	lambda := lion.DefaultBand().Wavelength()
	const staleOffset = 1.2
	trueOffset := lion.WrapPhase(staleOffset + 0.6)

	mon, err := lion.NewHealthMonitor(lion.HealthConfig{
		Rules: []lion.HealthRule{}, // manual triggers only
		Calibrations: []lion.HealthCalibration{{
			Antenna: "A1", Center: antenna, Offset: staleOffset, Lambda: lambda,
			Window: 64, MinSamples: 32,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lion.NewStreamEngine(lion.StreamConfig{
		WindowSize: 128,
		MinSamples: 32,
		SolveEvery: 16,
		Solver:     lion.StreamLine2DSolver(lambda, []float64{0.2}, true, lion.DefaultSolveOptions()),
		Monitor:    mon,
		Antenna:    "A1",
		Profile:    &lion.StreamProfile{Antenna: "A1", Center: antenna, Offset: staleOffset, Lambda: lambda},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close(context.Background())

	ctrl, err := lion.NewRecalController(lion.RecalConfig{
		Engine:       eng,
		Monitor:      mon,
		Antenna:      "A1",
		Lambda:       lambda,
		PositiveSide: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	mon.SetOnTransition(ctrl.OnTransition)

	for i := 0; i < 128; i++ {
		pos := lion.V3(-1.0+0.005*float64(i), 0, 0)
		phase := lion.WrapPhase(lion.PhaseOfDistance(antenna.Dist(pos), lambda) + trueOffset)
		if err := eng.Ingest("T1", lion.StreamSample{
			Time: time.Duration(i) * 10 * time.Millisecond, Pos: pos, Phase: phase,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}

	ev, err := ctrl.Trigger("facade")
	if err != nil {
		t.Fatal(err)
	}
	if ev.Outcome != lion.RecalSwapped {
		t.Fatalf("trigger outcome %q (%+v), want %q", ev.Outcome, ev, lion.RecalSwapped)
	}
	if d := math.Abs(lion.WrapPhaseSigned(ev.NewOffset - trueOffset)); d > 0.05 {
		t.Errorf("re-solved offset %v, want ≈%v", ev.NewOffset, trueOffset)
	}
	prof, version, ok := eng.ActiveProfile()
	if !ok || version != 2 {
		t.Fatalf("post-swap profile version=%d ok=%v, want 2", version, ok)
	}
	if d := math.Abs(lion.WrapPhaseSigned(prof.Offset - trueOffset)); d > 0.05 {
		t.Errorf("active profile offset %v, want ≈%v", prof.Offset, trueOffset)
	}
	if hist := ctrl.History(); len(hist) != 1 || hist[0].Outcome != lion.RecalSwapped {
		t.Fatalf("history %+v, want one swapped event", hist)
	}

	// The offline calibration solver is reachable through the same facade
	// and agrees with the controller's estimate.
	positions := make([]lion.Vec3, 96)
	wrapped := make([]float64, 96)
	for i := range positions {
		positions[i] = lion.V3(-1.0+0.005*float64(i), 0, 0)
		wrapped[i] = lion.WrapPhase(lion.PhaseOfDistance(antenna.Dist(positions[i]), lambda) + trueOffset)
	}
	res, err := lion.EstimateCalibrationLine(positions, wrapped, lion.CalibConfig{
		Lambda: lambda, Adaptive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(lion.WrapPhaseSigned(res.Offset - trueOffset)); d > 0.05 {
		t.Errorf("EstimateCalibrationLine offset %v, want ≈%v", res.Offset, trueOffset)
	}
	if rms := lion.CalibrationResidualRMS(positions, wrapped, res.Center, res.Offset, lambda); !(rms < 0.05) {
		t.Errorf("CalibrationResidualRMS = %v, want < 0.05", rms)
	}

	ctrl.Close()
	if _, err := ctrl.Trigger("late"); !errors.Is(err, lion.ErrRecalClosed) {
		t.Errorf("Trigger after Close: err = %v, want lion.ErrRecalClosed", err)
	}
}
