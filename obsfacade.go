package lion

import (
	"io"

	"github.com/rfid-lion/lion/internal/obs"
)

// Observability re-exports: the metrics registry, solve tracer, and
// structured logger behind liond's /metrics and /debug/trace endpoints.
// Attach a Tracer through SolveOptions.Trace (or StreamConfig.TraceSolves)
// to record per-IRWLS-iteration and per-candidate solver events; a nil
// Tracer is free on the hot path.
type (
	// Registry is a central metrics registry with Prometheus exposition.
	Registry = obs.Registry
	// Counter is a monotonically increasing metric.
	Counter = obs.Counter
	// Gauge is a settable metric.
	Gauge = obs.Gauge
	// Histogram is a bucketed distribution metric with windowed quantiles.
	Histogram = obs.Histogram
	// Tracer records solve-trace events; nil means tracing off.
	Tracer = obs.Tracer
	// TraceEvent is one solve-trace record (NDJSON line).
	TraceEvent = obs.Event
	// Logger writes structured JSON log lines.
	Logger = obs.Logger
)

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer returns an enabled solve tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewLogger returns a JSON-lines logger writing to w.
func NewLogger(w io.Writer) *Logger { return obs.NewLogger(w) }

// DefBuckets are the default latency histogram buckets, in seconds.
var DefBuckets = obs.DefBuckets
