package lion

import (
	"github.com/rfid-lion/lion/internal/calib"
	"github.com/rfid-lion/lion/internal/recal"
)

// Closed-loop recalibration re-exports: the controller behind liond's -recal
// flag. A RecalController subscribes to a HealthMonitor's alert transitions
// (HealthConfig.OnTransition via HealthMonitor.SetOnTransition) and, when a
// calibration-drift alert fires, re-solves the antenna's phase center and
// Eq. 17 offset from the stream engine's live window, validates the candidate
// against held-out samples, and hot-swaps the active StreamProfile — with a
// bounded audit history, a probation window, and automatic rollback.
type (
	// RecalController runs the drift-alert → re-solve → hot-swap loop.
	RecalController = recal.Controller
	// RecalConfig parameterises a RecalController.
	RecalConfig = recal.Config
	// RecalEvent is one audit-log entry: what ran, why, and what changed.
	RecalEvent = recal.Event
	// RecalOutcome labels how a recalibration run ended.
	RecalOutcome = recal.Outcome
)

// Outcomes recorded in RecalEvent.Outcome.
const (
	// RecalSwapped means the candidate beat the active profile and went live.
	RecalSwapped = recal.OutcomeSwapped
	// RecalRejected means the candidate did not improve the held-out fit.
	RecalRejected = recal.OutcomeRejected
	// RecalFailed means the evidence was insufficient or the solve errored.
	RecalFailed = recal.OutcomeFailed
	// RecalRolledBack means the previous profile was restored on probation.
	RecalRolledBack = recal.OutcomeRolledBack
)

// ErrRecalClosed is returned by RecalController.Trigger after Close.
var ErrRecalClosed = recal.ErrClosed

// NewRecalController validates the configuration, registers the controller's
// metrics, and starts the recalibration worker. Wire the returned controller
// into the monitor with HealthMonitor.SetOnTransition(ctrl.OnTransition).
func NewRecalController(cfg RecalConfig) (*RecalController, error) { return recal.New(cfg) }

// Offline calibration-solver re-exports: the shared core behind cmd/lioncal
// and the RecalController.
type (
	// CalibConfig parameterises one line-scan calibration solve.
	CalibConfig = calib.Config
	// CalibResult is the estimated phase center, Eq. 17 offset, and fit.
	CalibResult = calib.Result
)

// EstimateCalibrationLine solves one line-scan calibration: phase center via
// the linear localization model, then the combined tag+antenna offset via the
// paper's Eq. 17 circular mean over the residual phases.
func EstimateCalibrationLine(positions []Vec3, wrapped []float64, cfg CalibConfig) (CalibResult, error) {
	return calib.EstimateLine(positions, wrapped, cfg)
}

// CalibrationResidualRMS scores a (center, offset) pair against a scan as the
// RMS wrapped-phase residual in radians — the acceptance metric the
// RecalController applies to held-out samples.
func CalibrationResidualRMS(positions []Vec3, wrapped []float64, center Vec3, offset, lambda float64) float64 {
	return calib.OffsetResidualRMS(positions, wrapped, center, offset, lambda)
}
