package lion

import (
	"github.com/rfid-lion/lion/internal/core"
	"github.com/rfid-lion/lion/internal/geom"
	"github.com/rfid-lion/lion/internal/rf"
)

// Geometry primitives.
type (
	// Vec2 is a point or displacement in the plane.
	Vec2 = geom.Vec2
	// Vec3 is a point or displacement in space.
	Vec3 = geom.Vec3
)

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return geom.V2(x, y) }

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return geom.V3(x, y, z) }

// RF model.
type (
	// Band describes the reader's carrier.
	Band = rf.Band
)

// DefaultBand returns the paper's 920.625 MHz carrier.
func DefaultBand() Band { return rf.DefaultBand() }

// WrapPhase maps an angle onto [0, 2π).
func WrapPhase(theta float64) float64 { return rf.WrapPhase(theta) }

// WrapPhaseSigned maps an angle onto (−π, π] — the right wrap for comparing
// two phases, where the distance between 0.01 and 2π−0.01 is 0.02, not ~2π.
func WrapPhaseSigned(theta float64) float64 { return rf.WrapPhaseSigned(theta) }

// PhaseOfDistance returns the round-trip phase 4π·d/λ.
func PhaseOfDistance(d, lambda float64) float64 {
	return rf.PhaseOfDistance(d, lambda)
}

// Core localization types.
type (
	// PosPhase is one measurement: known tag position plus unwrapped phase.
	PosPhase = core.PosPhase
	// Pair indexes two observations forming one radical-line equation.
	Pair = core.Pair
	// Solution is a localization estimate with residual diagnostics.
	Solution = core.Solution
	// SolveOptions configures the (weighted) least-squares solver.
	SolveOptions = core.SolveOptions
	// StructuredOptions configures the multi-line structured pipelines.
	StructuredOptions = core.StructuredOptions
	// ThreeLineInput carries a three-line calibration scan.
	ThreeLineInput = core.ThreeLineInput
	// TwoLineInput carries a two-line planar scan.
	TwoLineInput = core.TwoLineInput
	// Candidate is one parameter combination in an adaptive sweep.
	Candidate = core.Candidate
	// AdaptiveResult is the fused outcome of an adaptive sweep.
	AdaptiveResult = core.AdaptiveResult
	// CenterCalibration reports a phase-center calibration.
	CenterCalibration = core.CenterCalibration
	// LineSession is the incremental sliding-window line solver: rebuild
	// solves are bit-identical to Locate2DLineIntervals, slide solves reuse
	// the previous window's normal equations with zero steady-state
	// allocations.
	LineSession = core.LineSession
	// LineSessionStats counts a LineSession's slides, rebuilds, and
	// incremental factorization updates.
	LineSessionStats = core.LineSessionStats
)

// Errors re-exported for matching with errors.Is.
var (
	ErrTooFewObservations = core.ErrTooFewObservations
	ErrDegenerateGeometry = core.ErrDegenerateGeometry
	ErrNoSolution         = core.ErrNoSolution
	ErrNoCandidates       = core.ErrNoCandidates
	ErrBadLambda          = core.ErrBadLambda
	ErrNonFiniteInput     = core.ErrNonFiniteInput
)

// DefaultSolveOptions returns the paper's default: weighted least squares.
func DefaultSolveOptions() SolveOptions { return core.DefaultSolveOptions() }

// DefaultStructuredOptions returns the paper's structured-scan defaults
// (range 0.8 m, interval 0.2 m, WLS).
func DefaultStructuredOptions() StructuredOptions {
	return core.DefaultStructuredOptions()
}

// Preprocess unwraps raw wrapped phases and optionally smooths them with a
// centred moving average, returning measurement records ready for the
// localizers (Sec. IV-A of the paper).
func Preprocess(positions []Vec3, wrapped []float64, smoothWindow int) ([]PosPhase, error) {
	return core.Preprocess(positions, wrapped, smoothWindow)
}

// Locate2D estimates a target in the plane from observations on an
// arbitrary 2-D trajectory using the supplied pairs.
func Locate2D(obs []PosPhase, lambda float64, pairs []Pair, opts SolveOptions) (*Solution, error) {
	return core.Locate2D(obs, lambda, pairs, opts)
}

// Locate3D estimates a target in space from observations with full 3-D
// displacement diversity.
func Locate3D(obs []PosPhase, lambda float64, pairs []Pair, opts SolveOptions) (*Solution, error) {
	return core.Locate3D(obs, lambda, pairs, opts)
}

// Locate2DLine solves the 2-D lower-dimension case: observations on a single
// straight line, the perpendicular coordinate recovered through d_r.
func Locate2DLine(obs []PosPhase, lambda, interval float64, positiveSide bool, opts SolveOptions) (*Solution, error) {
	return core.Locate2DLine(obs, lambda, interval, positiveSide, opts)
}

// Locate2DLineIntervals is Locate2DLine with several pairing separations
// combined into one system, which conditions the depth estimate at long
// range.
func Locate2DLineIntervals(obs []PosPhase, lambda float64, intervals []float64, positiveSide bool, opts SolveOptions) (*Solution, error) {
	return core.Locate2DLineIntervals(obs, lambda, intervals, positiveSide, opts)
}

// NewLineSession builds an incremental solver for a sliding window of line
// observations. Feed successive windows to Locate; overlapping windows reuse
// the previous normal equations (rank-1 update/downdate), disjoint or
// incoherent windows trigger a full rebuild identical to
// Locate2DLineIntervals.
func NewLineSession(lambda float64, intervals []float64, positiveSide bool) (*LineSession, error) {
	return core.NewLineSession(lambda, intervals, positiveSide)
}

// Locate3DPlanar solves the 3-D lower-dimension case: observations confined
// to a plane, with the out-of-plane coordinate recovered through d_r.
func Locate3DPlanar(obs []PosPhase, lambda float64, pairs []Pair, positiveSide bool, opts SolveOptions) (*Solution, error) {
	return core.Locate3DPlanar(obs, lambda, pairs, positiveSide, opts)
}

// LocateThreeLine runs the full 3-D structured localization over a
// three-line scan (paper Fig. 11, Eqs. 10–12).
func LocateThreeLine(in ThreeLineInput, opts StructuredOptions) (*Solution, error) {
	return core.LocateThreeLine(in, opts)
}

// LocateTwoLine runs the planar structured localization and recovers z.
func LocateTwoLine(in TwoLineInput, abovePlane bool, opts StructuredOptions) (*Solution, error) {
	return core.LocateTwoLine(in, abovePlane, opts)
}

// AdaptiveLocateThreeLine sweeps scanning range and interval and fuses the
// estimates by the residual-near-zero rule (Sec. IV-C-1).
func AdaptiveLocateThreeLine(in ThreeLineInput, ranges, intervals []float64, base StructuredOptions) (*AdaptiveResult, error) {
	return core.AdaptiveLocateThreeLine(in, ranges, intervals, base)
}

// AdaptiveLocateTwoLine is the two-line analogue of AdaptiveLocateThreeLine.
func AdaptiveLocateTwoLine(in TwoLineInput, abovePlane bool, ranges, intervals []float64, base StructuredOptions) (*AdaptiveResult, error) {
	return core.AdaptiveLocateTwoLine(in, abovePlane, ranges, intervals, base)
}

// PhaseOffset estimates the device phase offset Δθ = θ_T + θ_R (Eq. 17)
// against a calibrated phase center.
func PhaseOffset(positions []Vec3, wrapped []float64, center Vec3, lambda float64) (float64, error) {
	return core.PhaseOffset(positions, wrapped, center, lambda)
}

// ApplyPhaseOffset removes a calibrated offset from a wrapped measurement.
func ApplyPhaseOffset(measured, offset float64) float64 {
	return core.ApplyPhaseOffset(measured, offset)
}

// Pair-selection strategies.

// StridePairs pairs observation i with i+stride.
func StridePairs(n, stride int) []Pair { return core.StridePairs(n, stride) }

// SeparationPairs pairs each observation with the first later one at least
// sep metres away.
func SeparationPairs(pos []Vec3, sep float64) []Pair {
	return core.SeparationPairs(pos, sep)
}

// SubsampledAllPairs draws up to maxPairs pairs evenly from all (i, j)
// combinations.
func SubsampledAllPairs(n, maxPairs int) []Pair {
	return core.SubsampledAllPairs(n, maxPairs)
}
