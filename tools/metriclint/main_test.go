package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write lays a fixture tree under a temp root and returns the root.
func write(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, body := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLintCleanTree(t *testing.T) {
	root := write(t, map[string]string{
		"DESIGN.md": "lion_jobs_total lion_queue_depth lion_drops_total\n",
		"pkg/a.go": `package a

func setup(reg *Registry, kinds []string) {
	reg.Counter("lion_jobs_total", "Jobs.")
	reg.GaugeVec("lion_queue_depth", "Depth.", "worker")
	vec := reg.CounterVec("lion_drops_total", "Drops.", "reason")
	vec.With("overflow").Inc()
	for _, k := range kinds {
		// metriclint:bounded kinds is a fixed config set
		vec.With(k).Inc()
	}
}
`,
	})
	rep, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.issues) != 0 {
		t.Errorf("issues on clean tree: %v", rep.issues)
	}
	if len(rep.metrics) != 3 {
		t.Errorf("metrics = %v, want 3", rep.metrics)
	}
}

func TestLintViolations(t *testing.T) {
	root := write(t, map[string]string{
		"DESIGN.md": "lion_documented_total\n",
		"pkg/a.go": `package a

func setup(reg *Registry, label string) {
	reg.Counter("lion_BadName", "Bad case.")
	reg.Counter("lion_undocumented_total", "Missing from DESIGN.md.")
	reg.GaugeVec("lion_documented_total", "Bad label.", "1label")
	vec := reg.CounterVec("lion_documented_total", "Dup name, fine.", "reason")
	vec.With(label).Inc()
	// metriclint:bounded
	vec.With(label).Inc()
}
`,
	})
	rep, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`metric "lion_BadName" does not match`,
		`metric "lion_BadName" is not documented`,
		`metric "lion_undocumented_total" is not documented`,
		`label "1label" does not match`,
		"dynamic label value in .With() without a",
		"marker needs a reason",
	} {
		found := false
		for _, issue := range rep.issues {
			if strings.Contains(issue, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing issue %q in %v", want, rep.issues)
		}
	}
	// 8 total: the reasonless marker is itself an issue AND does not bless
	// the .With below it, so that call is flagged too; lion_BadName also
	// fails the counter _total suffix rule.
	if len(rep.issues) != 8 {
		t.Errorf("got %d issues, want 8: %v", len(rep.issues), rep.issues)
	}
}

// TestLintUnitSuffixes pins the unit-suffix rule: counters need _total,
// histograms need _seconds or _bytes, gauges carry no suffix requirement.
func TestLintUnitSuffixes(t *testing.T) {
	root := write(t, map[string]string{
		"DESIGN.md": "lion_jobs lion_wait lion_batch_bytes lion_depth lion_ok_total lion_dur_seconds\n",
		"pkg/a.go": `package a

func setup(reg *Registry) {
	reg.Counter("lion_jobs", "Counter without _total.")
	reg.Histogram("lion_wait", "Histogram without a unit.", nil)
	reg.Histogram("lion_batch_bytes", "Size histogram, fine.", nil)
	reg.Gauge("lion_depth", "Gauge, exempt.")
	reg.Counter("lion_ok_total", "Fine.")
	reg.Histogram("lion_dur_seconds", "Fine.", nil)
}
`,
	})
	rep, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`counter "lion_jobs" must end in _total`,
		`histogram "lion_wait" must end in _seconds or _bytes`,
	} {
		found := false
		for _, issue := range rep.issues {
			if strings.Contains(issue, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing issue %q in %v", want, rep.issues)
		}
	}
	if len(rep.issues) != 2 {
		t.Errorf("got %d issues, want 2: %v", len(rep.issues), rep.issues)
	}
}

// TestLintMarkerPlacement pins the marker's reach: its own line and the one
// below, nothing further.
func TestLintMarkerPlacement(t *testing.T) {
	root := write(t, map[string]string{
		"DESIGN.md": "lion_x_total\n",
		"pkg/a.go": `package a

func setup(reg *Registry, k string) {
	vec := reg.CounterVec("lion_x_total", "X.", "kind")
	vec.With(k).Inc() // metriclint:bounded inline marker works
	// metriclint:bounded marker one line up works

	vec.With(k).Inc()
}
`,
	})
	rep, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	var issues int
	for _, issue := range rep.issues {
		if strings.Contains(issue, "dynamic label") {
			issues++
		}
	}
	// The inline marker covers line 5; the lead-in marker covers line 6-7 but
	// the second With sits on line 8, past the marker's reach.
	if issues != 1 {
		t.Errorf("got %d dynamic-label issues, want 1 (stale marker must not carry): %v",
			issues, rep.issues)
	}
}

// TestLintRealTree runs the linter over the repository itself — the same
// invocation `make check` performs — so the contract holds on every commit.
func TestLintRealTree(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "DESIGN.md")); err != nil {
		t.Skip("repo root not found")
	}
	rep, err := lint(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.issues) != 0 {
		t.Errorf("repo tree has metric violations:\n%s", strings.Join(rep.issues, "\n"))
	}
	if len(rep.metrics) == 0 {
		t.Error("no metrics found in repo tree")
	}
}
