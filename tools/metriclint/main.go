// Command metriclint enforces the repo's metric contracts. Every metric
// registered through the obs registry (Counter, CounterVec, Gauge, GaugeFunc,
// GaugeVec, Histogram calls with a literal name) must match ^lion_[a-z_]+$
// and appear in DESIGN.md's observability section; vec label names must be
// valid Prometheus label identifiers; counters must end in _total and
// histograms in _seconds or _bytes (the Prometheus unit conventions).
// Label cardinality is also policed:
// a `.With(x)` call where x is not a string literal mints a time series per
// distinct runtime value, so it must carry a
//
//	// metriclint:bounded <reason>
//
// marker (same line or the line above) explaining why the value set is
// finite. Run from the repo root; `make check` wires it in.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var (
	nameRE  = regexp.MustCompile(`^lion_[a-z_]+$`)
	labelRE = regexp.MustCompile(`^[a-z_][a-z0-9_]*$`)
)

// registerFuncs are the obs.Registry methods that take a metric name as
// their first argument: the index of the label-name argument (-1 for
// unlabelled metrics) and the metric kind, which drives the unit-suffix rule.
var registerFuncs = map[string]struct {
	labelArg int
	kind     string
}{
	"Counter":    {-1, "counter"},
	"CounterVec": {2, "counter"},
	"Gauge":      {-1, "gauge"},
	"GaugeFunc":  {-1, "gauge"},
	"GaugeVec":   {2, "gauge"},
	"Histogram":  {-1, "histogram"},
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	rep, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
	if len(rep.metrics) == 0 {
		fmt.Fprintln(os.Stderr, "metriclint: no registered metrics found (wrong directory?)")
		os.Exit(1)
	}
	if len(rep.issues) > 0 {
		for _, issue := range rep.issues {
			fmt.Fprintln(os.Stderr, "metriclint:", issue)
		}
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metrics ok\n", len(rep.metrics))
}

// report is the lint result: the registered metrics (name -> "file:line" of
// first registration), their kinds, and the sorted list of violations.
type report struct {
	metrics map[string]string
	kinds   map[string]string
	issues  []string
}

// lint walks the tree, collects registrations, and cross-checks DESIGN.md.
func lint(root string) (*report, error) {
	rep, err := collect(root)
	if err != nil {
		return nil, err
	}
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		return nil, err
	}
	var names []string
	for name := range rep.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !nameRE.MatchString(name) {
			rep.issues = append(rep.issues, fmt.Sprintf("%s: metric %q does not match %s",
				rep.metrics[name], name, nameRE))
		}
		if !strings.Contains(string(design), name) {
			rep.issues = append(rep.issues, fmt.Sprintf("%s: metric %q is not documented in DESIGN.md",
				rep.metrics[name], name))
		}
		// Unit suffixes, per the Prometheus naming conventions: counters
		// count events (_total); histograms here observe durations or sizes
		// (_seconds/_bytes). Gauges are exempt — they report instantaneous
		// levels in whatever unit the name states.
		switch rep.kinds[name] {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				rep.issues = append(rep.issues, fmt.Sprintf(
					"%s: counter %q must end in _total", rep.metrics[name], name))
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
				rep.issues = append(rep.issues, fmt.Sprintf(
					"%s: histogram %q must end in _seconds or _bytes", rep.metrics[name], name))
			}
		}
	}
	sort.Strings(rep.issues)
	return rep, nil
}

// collect walks the tree and gathers registrations plus in-file violations
// (bad label names, unmarked dynamic .With values). The obs package itself
// (registry internals, tests) and vendored trees are skipped.
func collect(root string) (*report, error) {
	rep := &report{metrics: make(map[string]string), kinds: make(map[string]string)}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if base == "vendor" || base == "testdata" || strings.HasPrefix(base, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if strings.Contains(filepath.ToSlash(path), "internal/obs/") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		lintFile(fset, path, file, rep)
		return nil
	})
	return rep, err
}

// lintFile inspects one parsed file for registrations and .With call sites.
func lintFile(fset *token.FileSet, path string, file *ast.File, rep *report) {
	// Lines blessed by a `metriclint:bounded <reason>` marker: the marker
	// covers its own line and the line below, so it works both inline and
	// as a lead-in comment.
	bounded := make(map[int]bool)
	for _, grp := range file.Comments {
		for _, c := range grp.List {
			text := strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " \t")
			rest, ok := strings.CutPrefix(text, "metriclint:bounded")
			if !ok {
				continue
			}
			line := fset.Position(c.End()).Line
			if strings.TrimSpace(rest) == "" {
				rep.issues = append(rep.issues, fmt.Sprintf(
					"%s:%d: metriclint:bounded marker needs a reason", path, line))
				continue
			}
			bounded[line] = true
			bounded[line+1] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pos := fset.Position(call.Pos())
		if sel.Sel.Name == "With" && len(call.Args) == 1 {
			if _, lit := stringLit(call.Args[0]); !lit && !bounded[pos.Line] {
				rep.issues = append(rep.issues, fmt.Sprintf(
					"%s:%d: dynamic label value in .With() without a "+
						"`// metriclint:bounded <reason>` marker", path, pos.Line))
			}
			return true
		}
		reg, registers := registerFuncs[sel.Sel.Name]
		if !registers {
			return true
		}
		name, ok := stringLit(call.Args[0])
		// Only lion-prefixed literals are registry metrics; other receivers
		// share method names (e.g. a config field "Counter").
		if !ok || !strings.HasPrefix(name, "lion") {
			return true
		}
		if _, seen := rep.metrics[name]; !seen {
			rep.metrics[name] = fmt.Sprintf("%s:%d", path, pos.Line)
			rep.kinds[name] = reg.kind
		}
		if reg.labelArg >= 0 && reg.labelArg < len(call.Args) {
			if label, ok := stringLit(call.Args[reg.labelArg]); ok && !labelRE.MatchString(label) {
				rep.issues = append(rep.issues, fmt.Sprintf(
					"%s:%d: metric %q label %q does not match %s",
					path, pos.Line, name, label, labelRE))
			}
		}
		return true
	})
}

// stringLit unwraps a string-literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
