// Command metriclint enforces the repo's metric naming contract: every
// metric registered through the obs registry (Counter, CounterVec, Gauge,
// GaugeFunc, Histogram calls with a literal name) must match ^lion_[a-z_]+$
// and appear in DESIGN.md's observability section. Run from the repo root;
// `make check` wires it in.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var nameRE = regexp.MustCompile(`^lion_[a-z_]+$`)

// registerFuncs are the obs.Registry methods that take a metric name as
// their first argument.
var registerFuncs = map[string]bool{
	"Counter":    true,
	"CounterVec": true,
	"Gauge":      true,
	"GaugeFunc":  true,
	"Histogram":  true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	metrics, err := collect(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
	if len(metrics) == 0 {
		fmt.Fprintln(os.Stderr, "metriclint: no registered metrics found (wrong directory?)")
		os.Exit(1)
	}
	design, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
	var names []string
	for name := range metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := false
	for _, name := range names {
		if !nameRE.MatchString(name) {
			fmt.Fprintf(os.Stderr, "metriclint: %s: metric %q does not match %s\n",
				metrics[name], name, nameRE)
			failed = true
		}
		if !strings.Contains(string(design), name) {
			fmt.Fprintf(os.Stderr, "metriclint: %s: metric %q is not documented in DESIGN.md\n",
				metrics[name], name)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metrics ok\n", len(names))
}

// collect walks the tree and returns metric name -> "file:line" of the first
// registration. The obs package itself (registry internals, tests) and
// vendored trees are skipped.
func collect(root string) (map[string]string, error) {
	metrics := make(map[string]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if base == "vendor" || base == "testdata" || strings.HasPrefix(base, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		if strings.Contains(filepath.ToSlash(path), "internal/obs/") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registerFuncs[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			// Only lion-prefixed literals are registry metrics; other
			// receivers share method names (e.g. a config field "Counter").
			if !strings.HasPrefix(name, "lion") {
				return true
			}
			if _, seen := metrics[name]; !seen {
				metrics[name] = fmt.Sprintf("%s:%d", path, fset.Position(lit.Pos()).Line)
			}
			return true
		})
		return nil
	})
	return metrics, err
}
