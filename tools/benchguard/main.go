// Command benchguard compares a freshly measured lionbench -json snapshot
// against the committed baseline (BENCH_<pr>.json) and fails when the hot
// paths regress. `make bench-guard` wires it into `make check`.
//
// Rules:
//
//   - Every benchmark named in the baseline must be present in the current
//     snapshot — a silently dropped benchmark is a regression of coverage.
//   - allocs_per_op is guarded for every baseline benchmark: allocation
//     counts are deterministic, so any increase beyond the shift budget
//     fails. A zero-alloc baseline therefore fails on the first allocation.
//   - ns_per_op is guarded only for the names listed with -ns (wall clock is
//     noisy; the guarded list holds the benchmarks whose latency is a
//     product requirement).
//   - Macro SLO fields (the "macro" section lionload merges into a
//     snapshot) are guarded against their declared targets, not against the
//     previous snapshot: a committed BENCH file whose measured macro value
//     exceeds its own SLO target is a failing build. When the current
//     snapshot carries macro entries too (a fresh lionload run), the same
//     target rule applies to them, and any macro name present in the
//     baseline but missing from a macro-carrying current snapshot is a
//     coverage regression.
//
// Exit status 1 on any violation, with one line per finding.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/rfid-lion/lion/internal/benchfmt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_7.json", "committed snapshot to guard against")
		currentPath  = fs.String("current", "", "freshly measured snapshot (required)")
		maxShift     = fs.Float64("max-shift", 0.10, "allowed fractional regression per metric")
		// recal_solve is deliberately NOT ns-guarded: the recalibration
		// re-solve runs off the hot path (once per drift alert, on the
		// controller's goroutine), so only its deterministic allocs/op is a
		// product requirement — wall clock there is all measurement noise.
		nsNames = fs.String("ns", "locate_2d_line,stream_resolve_incremental,wire_decode",
			"comma-separated benchmark names whose ns_per_op is guarded")
		macro = fs.Bool("macro", true,
			"guard macro SLO fields against their declared targets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	baseline, err := benchfmt.Read(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	current, err := benchfmt.Read(*currentPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	guardNS := map[string]bool{}
	for _, n := range strings.Split(*nsNames, ",") {
		if n = strings.TrimSpace(n); n != "" {
			guardNS[n] = true
		}
	}
	findings := compare(baseline, current, *maxShift, guardNS)
	if *macro {
		findings = append(findings, compareMacro(baseline, current)...)
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d regression(s) against %s", len(findings), *baselinePath)
	}
	fmt.Fprintf(stdout, "benchguard: %d benchmarks within %.0f%% of %s, %d macro SLO fields on target\n",
		len(baseline.Benchmarks), *maxShift*100, *baselinePath, len(baseline.Macro))
	return nil
}

// compare returns one human-readable finding per violated micro rule.
func compare(baseline, current *benchfmt.Snapshot, maxShift float64, guardNS map[string]bool) []string {
	cur := map[string]benchfmt.Bench{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var findings []string
	for _, base := range baseline.Benchmarks {
		got, ok := cur[base.Name]
		if !ok {
			findings = append(findings,
				fmt.Sprintf("%s: missing from current snapshot", base.Name))
			continue
		}
		if allowed := float64(base.AllocsPerOp) * (1 + maxShift); float64(got.AllocsPerOp) > allowed {
			findings = append(findings,
				fmt.Sprintf("%s: allocs/op %d, baseline %d (budget %.1f)",
					base.Name, got.AllocsPerOp, base.AllocsPerOp, allowed))
		}
		if guardNS[base.Name] {
			if allowed := base.NsPerOp * (1 + maxShift); got.NsPerOp > allowed {
				findings = append(findings,
					fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (budget %.0f)",
						base.Name, got.NsPerOp, base.NsPerOp, allowed))
			}
		}
	}
	return findings
}

// compareMacro guards the macro SLO section. Macro measurements are
// end-to-end wall-clock numbers from a real load run, so the guard is
// absolute — Value <= declared Target — applied to the committed baseline
// (the snapshot of record must meet its own SLOs) and, when present, to a
// freshly measured current macro section. Coverage is only compared when
// the current snapshot carries macro entries at all: a plain lionbench run
// legitimately has none.
func compareMacro(baseline, current *benchfmt.Snapshot) []string {
	var findings []string
	check := func(origin string, entries []benchfmt.Macro) {
		for _, m := range entries {
			if !m.Pass() {
				findings = append(findings,
					fmt.Sprintf("macro %s (%s): %g %s over target %g %s",
						m.Name, origin, m.Value, m.Unit, m.Target, m.Unit))
			}
		}
	}
	check("baseline", baseline.Macro)
	if len(current.Macro) == 0 {
		return findings
	}
	check("current", current.Macro)
	cur := map[string]bool{}
	for _, m := range current.Macro {
		cur[m.Name] = true
	}
	for _, m := range baseline.Macro {
		if !cur[m.Name] {
			findings = append(findings,
				fmt.Sprintf("macro %s: missing from current snapshot", m.Name))
		}
	}
	return findings
}
