// Command benchguard compares a freshly measured lionbench -json snapshot
// against the committed baseline (BENCH_<pr>.json) and fails when the hot
// paths regress. `make bench-guard` wires it into `make check`.
//
// Rules:
//
//   - Every benchmark named in the baseline must be present in the current
//     snapshot — a silently dropped benchmark is a regression of coverage.
//   - allocs_per_op is guarded for every baseline benchmark: allocation
//     counts are deterministic, so any increase beyond the shift budget
//     fails. A zero-alloc baseline therefore fails on the first allocation.
//   - ns_per_op is guarded only for the names listed with -ns (wall clock is
//     noisy; the guarded list holds the benchmarks whose latency is a
//     product requirement).
//
// Exit status 1 on any violation, with one line per finding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

// benchResult mirrors cmd/lionbench's snapshot entry (additive schema).
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type benchSnapshot struct {
	Schema     string        `json:"schema"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchguard", flag.ContinueOnError)
	var (
		baselinePath = fs.String("baseline", "BENCH_7.json", "committed snapshot to guard against")
		currentPath  = fs.String("current", "", "freshly measured snapshot (required)")
		maxShift     = fs.Float64("max-shift", 0.10, "allowed fractional regression per metric")
		// recal_solve is deliberately NOT ns-guarded: the recalibration
		// re-solve runs off the hot path (once per drift alert, on the
		// controller's goroutine), so only its deterministic allocs/op is a
		// product requirement — wall clock there is all measurement noise.
		nsNames = fs.String("ns", "locate_2d_line,stream_resolve_incremental,wire_decode",
			"comma-separated benchmark names whose ns_per_op is guarded")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	baseline, err := readSnapshot(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	current, err := readSnapshot(*currentPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	guardNS := map[string]bool{}
	for _, n := range strings.Split(*nsNames, ",") {
		if n = strings.TrimSpace(n); n != "" {
			guardNS[n] = true
		}
	}
	findings := compare(baseline, current, *maxShift, guardNS)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return fmt.Errorf("%d regression(s) against %s", len(findings), *baselinePath)
	}
	fmt.Fprintf(stdout, "benchguard: %d benchmarks within %.0f%% of %s\n",
		len(baseline.Benchmarks), *maxShift*100, *baselinePath)
	return nil
}

func readSnapshot(path string) (*benchSnapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(snap.Schema, "lionbench/") {
		return nil, fmt.Errorf("%s: unknown schema %q", path, snap.Schema)
	}
	return &snap, nil
}

// compare returns one human-readable finding per violated rule.
func compare(baseline, current *benchSnapshot, maxShift float64, guardNS map[string]bool) []string {
	cur := map[string]benchResult{}
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	var findings []string
	for _, base := range baseline.Benchmarks {
		got, ok := cur[base.Name]
		if !ok {
			findings = append(findings,
				fmt.Sprintf("%s: missing from current snapshot", base.Name))
			continue
		}
		if allowed := float64(base.AllocsPerOp) * (1 + maxShift); float64(got.AllocsPerOp) > allowed {
			findings = append(findings,
				fmt.Sprintf("%s: allocs/op %d, baseline %d (budget %.1f)",
					base.Name, got.AllocsPerOp, base.AllocsPerOp, allowed))
		}
		if guardNS[base.Name] {
			if allowed := base.NsPerOp * (1 + maxShift); got.NsPerOp > allowed {
				findings = append(findings,
					fmt.Sprintf("%s: %.0f ns/op, baseline %.0f (budget %.0f)",
						base.Name, got.NsPerOp, base.NsPerOp, allowed))
			}
		}
	}
	return findings
}
