package main

import (
	"github.com/rfid-lion/lion/internal/benchfmt"

	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(benchmarks ...benchfmt.Bench) *benchfmt.Snapshot {
	return &benchfmt.Snapshot{Schema: "lionbench/1", Benchmarks: benchmarks}
}

func TestCompareCleanPass(t *testing.T) {
	base := snap(
		benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 50000, AllocsPerOp: 100},
		benchfmt.Bench{Name: "stream_resolve_incremental", NsPerOp: 8000, AllocsPerOp: 0},
	)
	cur := snap(
		benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 54000, AllocsPerOp: 100},
		benchfmt.Bench{Name: "stream_resolve_incremental", NsPerOp: 8500, AllocsPerOp: 0},
	)
	guard := map[string]bool{"locate_2d_line": true, "stream_resolve_incremental": true}
	if f := compare(base, cur, 0.10, guard); len(f) != 0 {
		t.Fatalf("unexpected findings: %v", f)
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := snap(benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 50000, AllocsPerOp: 100})
	cur := snap(benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 56000, AllocsPerOp: 100})
	guard := map[string]bool{"locate_2d_line": true}
	f := compare(base, cur, 0.10, guard)
	if len(f) != 1 || !strings.Contains(f[0], "ns/op") {
		t.Fatalf("want one ns/op finding, got %v", f)
	}
	// The same shift on an unguarded name passes: wall clock is only policed
	// where latency is a product requirement.
	if f := compare(base, cur, 0.10, nil); len(f) != 0 {
		t.Fatalf("unguarded ns shift flagged: %v", f)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := snap(
		benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 50000, AllocsPerOp: 100},
		benchfmt.Bench{Name: "stream_resolve_incremental", NsPerOp: 8000, AllocsPerOp: 0},
	)
	cur := snap(
		benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 50000, AllocsPerOp: 112},
		benchfmt.Bench{Name: "stream_resolve_incremental", NsPerOp: 8000, AllocsPerOp: 1},
	)
	f := compare(base, cur, 0.10, nil)
	if len(f) != 2 {
		t.Fatalf("want two allocs/op findings (every name guarded, zero baseline "+
			"fails on the first allocation), got %v", f)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := snap(
		benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 50000, AllocsPerOp: 100},
		benchfmt.Bench{Name: "stream_resolve_incremental", NsPerOp: 8000, AllocsPerOp: 0},
	)
	cur := snap(benchfmt.Bench{Name: "locate_2d_line", NsPerOp: 50000, AllocsPerOp: 100})
	f := compare(base, cur, 0.10, nil)
	if len(f) != 1 || !strings.Contains(f[0], "missing") {
		t.Fatalf("want one missing-benchmark finding, got %v", f)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"schema":"lionbench/1","benchmarks":[
		{"name":"locate_2d_line","ns_per_op":50000,"allocs_per_op":100}]}`)
	good := write("good.json", `{"schema":"lionbench/1","benchmarks":[
		{"name":"locate_2d_line","ns_per_op":51000,"allocs_per_op":100}]}`)
	bad := write("bad.json", `{"schema":"lionbench/1","benchmarks":[
		{"name":"locate_2d_line","ns_per_op":90000,"allocs_per_op":100}]}`)

	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", good}, &out); err != nil {
		t.Fatalf("clean comparison failed: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", bad}, &out); err == nil {
		t.Fatalf("regressed comparison passed:\n%s", out.String())
	}
	if err := run([]string{"-baseline", base}, &out); err == nil {
		t.Fatal("missing -current accepted")
	}
	if err := run([]string{"-baseline", base, "-current", write("junk.json", "{")}, &out); err == nil {
		t.Fatal("malformed current snapshot accepted")
	}
	if err := run([]string{"-baseline", base, "-current",
		write("wrong.json", `{"schema":"other/1","benchmarks":[]}`)}, &out); err == nil {
		t.Fatal("wrong schema accepted")
	}
}

func TestCompareMacroTargets(t *testing.T) {
	base := snap()
	base.Macro = []benchfmt.Macro{
		{Name: "portal/ingest_p99_seconds", Scenario: "portal", Metric: "ingest_p99_seconds",
			Value: 0.040, Target: 0.250, Unit: "seconds"},
		{Name: "portal/drop_rate", Scenario: "portal", Metric: "drop_rate",
			Value: 0, Target: 0.01, Unit: "ratio"},
		{Name: "portal/trend_only", Scenario: "portal", Metric: "trend_only",
			Value: 123, Unit: "seconds"}, // no target: recorded, never guarded
	}

	// A lionbench-only current snapshot (no macro section) only guards the
	// baseline's own targets.
	if f := compareMacro(base, snap()); len(f) != 0 {
		t.Fatalf("clean baseline flagged: %v", f)
	}

	// Baseline over its own target fails even with no current macro section:
	// the committed snapshot of record must meet its SLOs.
	over := snap()
	over.Macro = []benchfmt.Macro{{Name: "portal/ingest_p99_seconds", Scenario: "portal",
		Metric: "ingest_p99_seconds", Value: 0.300, Target: 0.250, Unit: "seconds"}}
	if f := compareMacro(over, snap()); len(f) != 1 || !strings.Contains(f[0], "over target") {
		t.Fatalf("want one over-target finding, got %v", f)
	}

	// A macro-carrying current snapshot is held to the same target rule and
	// to baseline coverage.
	cur := snap()
	cur.Macro = []benchfmt.Macro{{Name: "portal/ingest_p99_seconds", Scenario: "portal",
		Metric: "ingest_p99_seconds", Value: 0.400, Target: 0.250, Unit: "seconds"}}
	f := compareMacro(base, cur)
	var overTarget, missing int
	for _, s := range f {
		if strings.Contains(s, "over target") {
			overTarget++
		}
		if strings.Contains(s, "missing") {
			missing++
		}
	}
	if overTarget != 1 || missing != 2 {
		t.Fatalf("want 1 over-target + 2 missing-coverage findings, got %v", f)
	}
}

func TestRunMacroEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	base := write("base.json", `{"schema":"lionbench/1","benchmarks":[],
		"macro":[{"name":"portal/ingest_p99_seconds","scenario":"portal",
		"metric":"ingest_p99_seconds","value":0.3,"target":0.25,"unit":"seconds"}]}`)
	cur := write("cur.json", `{"schema":"lionbench/1","benchmarks":[]}`)
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-current", cur}, &out); err == nil {
		t.Fatalf("over-target macro baseline passed:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-baseline", base, "-current", cur, "-macro=false"}, &out); err != nil {
		t.Fatalf("-macro=false still guarded: %v\n%s", err, out.String())
	}
}
