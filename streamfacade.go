package lion

import (
	"context"

	"github.com/rfid-lion/lion/internal/stream"
)

// Streaming re-exports: the real-time localization engine behind the liond
// daemon. Push timestamped (position, wrapped phase) samples per tag into a
// StreamEngine and read estimates back continuously; the final window of a
// stream solves bit-identically to the offline pipeline over the same
// samples.
type (
	// StreamEngine ingests per-tag sample streams and publishes estimates.
	StreamEngine = stream.Engine
	// StreamConfig parameterises a StreamEngine.
	StreamConfig = stream.Config
	// StreamSample is one timestamped read.
	StreamSample = stream.Sample
	// StreamEstimate is one published localization result.
	StreamEstimate = stream.Estimate
	// StreamMetrics is a snapshot of the engine's counters.
	StreamMetrics = stream.Metrics
	// StreamSolver turns one preprocessed window into an estimate.
	StreamSolver = stream.Solver
	// StreamSessionSolver is a stateful per-tag window solver, created by
	// StreamConfig.SolverFactory; see stream.SessionSolver for the aliasing
	// and serialization contract.
	StreamSessionSolver = stream.SessionSolver
	// StreamDropPolicy selects the behaviour at a full window.
	StreamDropPolicy = stream.DropPolicy
	// StreamProfile is one antenna's live calibration (phase center, Eq. 17
	// offset); install via StreamConfig.Profile and hot-swap with
	// StreamEngine.SwapProfile.
	StreamProfile = stream.Profile
)

// Overflow policies for StreamConfig.Policy.
const (
	// EvictOldest slides the window (the default).
	EvictOldest = stream.EvictOldest
	// RejectNewest refuses samples at a full window.
	RejectNewest = stream.RejectNewest
)

// Streaming errors re-exported for matching with errors.Is.
var (
	ErrStreamClosed     = stream.ErrClosed
	ErrStreamWindowFull = stream.ErrWindowFull
	ErrStreamBadSample  = stream.ErrBadSample
)

// NewStreamEngine validates the configuration and starts the solve pool.
func NewStreamEngine(cfg StreamConfig) (*StreamEngine, error) { return stream.New(cfg) }

// StreamLine2DSolver returns the conveyor/track solver: Locate2DLineIntervals
// over each window.
func StreamLine2DSolver(lambda float64, intervals []float64, positiveSide bool, opts SolveOptions) StreamSolver {
	return stream.Line2DSolver(lambda, intervals, positiveSide, opts)
}

// StreamFree2DSolver returns a Locate2D window solver with stride pairing
// (stride 0 = quarter window).
func StreamFree2DSolver(lambda float64, stride int, opts SolveOptions) StreamSolver {
	return stream.Free2DSolver(lambda, stride, opts)
}

// StreamFree3DSolver is StreamFree2DSolver with full 3-D diversity.
func StreamFree3DSolver(lambda float64, stride int, opts SolveOptions) StreamSolver {
	return stream.Free3DSolver(lambda, stride, opts)
}

// StreamIncrementalLine2DFactory returns a StreamConfig.SolverFactory whose
// per-tag sessions solve the line case incrementally (core.LineSession):
// zero heap allocations per steady-state window re-solve, bit-identical to
// StreamLine2DSolver on rebuilds and within 1e-9·max(1, cond) on slides.
// Requires StreamConfig.Smooth == 0.
func StreamIncrementalLine2DFactory(lambda float64, intervals []float64, positiveSide bool, opts SolveOptions) (func() StreamSessionSolver, error) {
	return stream.IncrementalLine2DFactory(lambda, intervals, positiveSide, opts)
}

// StreamSampleOf converts a testbed read into a stream sample.
func StreamSampleOf(s Sample) StreamSample { return stream.FromSim(s) }

// ReplayTrace feeds a recorded trace into the engine under one tag at the
// given speed multiple of real time (<= 0 = as fast as possible). It returns
// the number of samples accepted.
func ReplayTrace(ctx context.Context, e *StreamEngine, tag string, trace []Sample, speed float64) (int, error) {
	return stream.Replay(ctx, e, tag, trace, speed)
}

// SolveStreamWindow runs the offline pipeline (Preprocess + solver) over one
// window of samples — the exact computation a StreamEngine performs per
// snapshot, exposed for equivalence checks and one-shot use.
func SolveStreamWindow(samples []StreamSample, smooth int, solver StreamSolver) (*Solution, error) {
	return stream.SolveWindow(samples, smooth, solver, nil)
}
