package lion

import (
	"github.com/rfid-lion/lion/internal/health"
)

// Health-monitoring re-exports: the alerting layer behind liond's
// /v1/alerts, /readyz, and /debug/dashboard. Build a HealthMonitor, hand it
// to StreamConfig.Monitor, and the engine feeds it every accepted sample and
// window solve; a nil *HealthMonitor costs nothing on the solve path (the
// same contract as the nil Tracer).
type (
	// HealthMonitor evaluates quality rules over the solve stream.
	HealthMonitor = health.Monitor
	// HealthConfig parameterises a HealthMonitor.
	HealthConfig = health.Config
	// HealthRule is one declarative alerting rule.
	HealthRule = health.Rule
	// HealthAlert is one alert's current state and evidence.
	HealthAlert = health.Alert
	// HealthCalibration arms drift detection for one antenna's phase offset.
	HealthCalibration = health.Calibration
	// HealthDriftStatus reports an antenna's current drift estimate.
	HealthDriftStatus = health.DriftStatus
)

// NewHealthMonitor validates the configuration and builds the monitor.
func NewHealthMonitor(cfg HealthConfig) (*HealthMonitor, error) { return health.New(cfg) }

// DefaultHealthRules returns the standard rule set (calibration drift,
// residual/condition deviation, error and drop rates).
func DefaultHealthRules() []HealthRule { return health.DefaultRules() }
