package lion

import (
	"github.com/rfid-lion/lion/internal/hologram"
	"github.com/rfid-lion/lion/internal/hyperbola"
)

// Baseline methods from the paper's related work, exported so downstream
// users can compare against LION on their own data.
type (
	// HologramConfig describes the DAH grid search volume.
	HologramConfig = hologram.Config
	// HologramResult is a hologram estimate.
	HologramResult = hologram.Result
	// AntennaReading is one antenna's measurement of a static tag for the
	// multi-antenna hologram.
	AntennaReading = hologram.AntennaReading
	// HyperbolaOptions configures the Gauss–Newton hyperbola baseline.
	HyperbolaOptions = hyperbola.Options
	// HyperbolaResult is a hyperbola-intersection estimate.
	HyperbolaResult = hyperbola.Result
)

// LocateHologram runs the Tagoram-style differential augmented hologram
// (grid search) over measurements at known tag positions.
func LocateHologram(obs []PosPhase, cfg HologramConfig) (*HologramResult, error) {
	return hologram.Locate(obs, cfg)
}

// LocateTagMultiAntenna locates a static tag from several antennas'
// readings with the differential hologram; calibration quality enters
// through each reading's Center and Offset.
func LocateTagMultiAntenna(readings []AntennaReading, cfg HologramConfig) (*HologramResult, error) {
	return hologram.LocateTagMultiAntenna(readings, cfg)
}

// LocateHyperbola runs the Gauss–Newton hyperbola-intersection baseline.
func LocateHyperbola(obs []PosPhase, lambda float64, pairs []Pair, init Vec3, opts HyperbolaOptions) (*HyperbolaResult, error) {
	return hyperbola.Locate(obs, lambda, pairs, init, opts)
}
