// Package lion is the public API of LION, a linear RFID localization and
// antenna phase-calibration library reproducing "Pinpoint Achilles' Heel in
// RFID Localization: Phase Calibration of RFID Antenna based on Linear
// Localization Model" (ICDCS 2022).
//
// # What LION does
//
// Phase-based RFID localization finds a target (an antenna, or dually a
// tag) from the phases a reader reports while a tag moves along a known
// trajectory. Classical methods intersect circles or hyperbolas —
// non-linear and expensive — or grid-search a hologram. LION observes that
// the intersection of the circles is also the intersection of their
// pairwise *radical lines* (radical planes in 3-D), turning localization
// into a small linear least-squares problem:
//
//	α·x + β·y [+ γ·z] + ω·d_r = κ          (one equation per pair)
//
// solved in microseconds with iteratively re-weighted least squares to
// resist ambient noise and multipath. On top of the localizer, the library
// calibrates an antenna's true *phase center* (which is displaced 2–3 cm
// from its physical center on real hardware) and its constant *phase
// offset*.
//
// # Quick start
//
//	obs, _ := lion.Preprocess(positions, wrappedPhases, 9)
//	sol, _ := lion.Locate2DLine(obs, lion.DefaultBand().Wavelength(),
//	    0.2, true, lion.DefaultSolveOptions())
//	fmt.Println(sol.Position)
//
// The library ships a full software testbed (sub-package sim via this
// facade) so every pipeline can be exercised without hardware; see
// examples/ for runnable programs and internal/experiment for the
// reproduction of every figure in the paper.
//
// # Throughput
//
// Independent localizations fan out across a bounded worker pool with
// deterministic result ordering: BatchLocate and BatchAdaptive accept many
// requests and return outcomes keyed by submission index, so a parallel run
// is byte-identical to a serial one. The adaptive parameter sweeps
// (AdaptiveLocateThreeLine and friends) parallelise their range×interval
// grid on the same engine internally.
package lion
